"""HX — hot-path checks over functions registered as hot.

The simulator's remaining cost is the per-access Python loop; these
rules keep the handful of functions on that path from silently
regressing while the vectorized epoch kernel is built on top of them.
Only *registered* hot functions are checked — everything else may
trade speed for clarity freely.

Registration is either membership in :data:`DEFAULT_HOT_SUFFIXES`
(matched against the function qualname) or an inline ``# repro: hot``
marker on the ``def`` line.

Inside a hot function, every ``for``/``while`` loop body — and the
entire body of a *closure* defined in a hot function, since such
closures run once per access — is checked for:

``HX1`` per-iteration allocations: container displays and
    comprehensions, and bare ``list()``/``dict()``/``set()`` calls
    (allocations inside ``return``/``raise`` run at most once per
    call and are exempt; tuple packing is left alone — it is how
    multi-value returns work);
``HX2`` repeated lookups: an attribute chain of three or more names
    (``a.b.c``) loaded in the loop, or the same ``obj.attr`` loaded
    :data:`REPEAT_THRESHOLD` or more times in one loop body — both
    hoistable to locals;
``HX3`` ``try``/``except`` inside the loop body (move the handler
    outside the loop or restructure; even zero-cost exception tables
    cost icache and block some CPython specializations).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from ..project import FunctionInfo, ProjectIndex, dotted_parts
from ..rules import Finding

#: qualname suffixes registered as hot by default: the packed
#: tag-store access closures, the burst loops, and the vectorised
#: trace generator (see ROADMAP "vectorized epoch kernel").
DEFAULT_HOT_SUFFIXES = (
    "Cache.access",
    "Cache._make_lru_access",
    "SimulatedCore.step_burst",
    "SimulatedCore._step_burst_plain",
    "SimulatedCore._step_burst_timer_inline",
    "SimulatedCore._step_burst_timer_plain",
    "_mixture_trace_numpy",
)

#: same-attribute loads per loop body that trigger HX2.
REPEAT_THRESHOLD = 3

ALLOCATING_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def is_hot(info: FunctionInfo) -> bool:
    """Is this function registered for hot-path checking?"""
    if info.is_hot_marked():
        return True
    qualname = info.qualname
    return any(qualname.endswith(suffix) for suffix in DEFAULT_HOT_SUFFIXES)


def _loop_bodies(info: FunctionInfo) -> Iterator[Tuple[List[ast.stmt], str]]:
    """Yield (statements, label) regions checked as per-iteration code.

    Loops belong to the function that syntactically contains them; a
    closure nested in a hot function contributes its whole body (it
    runs per call), which the driver reaches by treating the closure
    as hot itself.
    """
    own_loops: List[ast.stmt] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested defs are their own (possibly hot) scope
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                own_loops.append(child)
            walk(child)

    walk(info.node)
    for loop in own_loops:
        label = f"loop at line {loop.lineno}"
        yield list(loop.body) + list(loop.orelse), label


def _closure_body(info: FunctionInfo) -> List[ast.stmt]:
    return list(info.node.body)


def _iter_region(statements: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a region, skipping nested defs and return/raise subtrees."""
    stack: List[ast.AST] = list(statements)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Return, ast.Raise)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _attr_chain(node: ast.Attribute) -> Tuple[List[str], bool]:
    """(name parts, pure) for an attribute load; pure means Name base."""
    parts = dotted_parts(node)
    return parts, parts[0] != "?"


class _RegionChecker:
    """Run HX1/HX2/HX3 over one per-iteration region."""

    def __init__(self, info: FunctionInfo, label: str) -> None:
        self.info = info
        self.label = label
        self.findings: List[Finding] = []

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        module = self.info.module
        if module.allows(node.lineno, rule):
            return
        self.findings.append(
            Finding(
                path=module.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=rule,
                message=f"{message} ({self.label} of hot {self.info.name})",
                symbol=self.info.qualname,
            )
        )

    def check(self, statements: List[ast.stmt]) -> List[Finding]:
        attr_loads: Dict[str, List[ast.Attribute]] = {}
        covered: set = set()
        for node in _iter_region(statements):
            if isinstance(
                node,
                (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
            ):
                self._report(
                    "HX1",
                    node,
                    "per-iteration container allocation; hoist or reuse a "
                    "preallocated buffer",
                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ALLOCATING_CALLS:
                    self._report(
                        "HX1",
                        node,
                        f"per-iteration {node.func.id}() allocation; hoist "
                        "or reuse a preallocated buffer",
                    )
            elif isinstance(node, ast.Try):
                self._report(
                    "HX3",
                    node,
                    "try/except inside the loop body; hoist the handler "
                    "out of the per-iteration path",
                )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                if id(node) in covered:
                    continue
                parts, pure = _attr_chain(node)
                # mark sub-attributes of this chain as seen so a.b.c
                # counts once, not once per link
                inner = node.value
                while isinstance(inner, ast.Attribute):
                    covered.add(id(inner))
                    inner = inner.value
                if not pure:
                    continue
                key = ".".join(parts)
                if len(parts) >= 3:
                    self._report(
                        "HX2",
                        node,
                        f"attribute chain {key} loaded per iteration; "
                        "hoist to a local before the loop",
                    )
                else:
                    attr_loads.setdefault(key, []).append(node)
        for key, nodes in sorted(attr_loads.items()):
            if len(nodes) >= REPEAT_THRESHOLD:
                first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
                self._report(
                    "HX2",
                    first,
                    f"{key} loaded {len(nodes)}x per iteration; hoist to "
                    "a local before the loop",
                )
        return self.findings


def run_hx_pass(index: ProjectIndex) -> List[Finding]:
    """Run the hot-path pass over an indexed project."""
    raw: List[Finding] = []
    for _, info in sorted(index.functions.items()):
        parent_hot = (
            info.parent is not None
            and info.parent in index.functions
            and is_hot(index.functions[info.parent])
        )
        if is_hot(info):
            for statements, label in _loop_bodies(info):
                raw.extend(_RegionChecker(info, label).check(statements))
        if parent_hot:
            # A closure inside a hot function runs per access: its
            # whole body is per-iteration code.
            checker = _RegionChecker(info, "closure body")
            raw.extend(checker.check(_closure_body(info)))
    # Nested loops are both their own region and part of the enclosing
    # loop's region; keep one finding per exact site.
    findings: List[Finding] = []
    seen = set()
    for finding in raw:
        key = (finding.rule, finding.path, finding.line, finding.col)
        if key not in seen:
            seen.add(key)
            findings.append(finding)
    return findings


__all__ = ["DEFAULT_HOT_SUFFIXES", "REPEAT_THRESHOLD", "is_hot", "run_hx_pass"]
