"""PX — process-safety: picklable payloads, no post-import global writes.

Everything crossing a worker boundary must survive a pickle round
trip, and nothing the orchestrator runs may depend on shared mutable
module state — the two properties that make pluggable remote
executors (and the shared ``ResultCache`` memoization tier) safe.

``PX1`` *unpicklable object in a worker payload position*
    Lambdas, functions/classes defined locally inside the enclosing
    function, and generator expressions may not appear in *payload
    positions*: arguments of ``SimJob(...)`` / ``RunSummary(...)``
    construction, ``.submit(...)`` / ``.apply_async(...)`` /
    ``.send(...)`` calls, or the ``target=`` of ``Process(...)``.
    These are exactly the values that end up on a worker pipe.

``PX2`` *module-level mutable global written after import*
    A module-level name bound to a mutable container may only be
    populated by module-level (import-time) code.  Writes from inside
    any function — rebinding via ``global``, item assignment, or
    mutating method calls — are flagged: they are invisible shared
    state between jobs in one process and silently *diverge* between
    processes, the classic source of serial-vs-parallel drift.

``PX3`` *open handle or lock in shared/payload position*
    ``open(...)`` / ``threading``/``multiprocessing`` lock objects /
    ``socket(...)`` assigned at module level (inherited ambiguously
    across ``fork``, absent under ``spawn``) or placed in a payload
    position (never picklable).

``PX4`` *non-atomic write to a shared spool/bus file*
    Inside modules whose name contains ``bus`` or ``spool`` — code
    that other *processes* read concurrently — plain ``open(path,
    "w"/"a")`` and ``Path.write_text``/``write_bytes`` publish partial
    content: a reader (or a crash mid-write) observes a torn file.
    Writes must go through an ``_atomic*`` helper (same-directory temp
    file + ``os.replace``) or ``os.open`` with ``O_CREAT | O_EXCL``
    for claim records; functions whose name starts with ``_atomic``
    are the sanctioned implementation site and are exempt.

Known false negatives, by design: payloads built dynamically
(``setattr``, ``**kwargs`` dicts assembled elsewhere), unpicklable
types hidden behind attribute aliases, and ``__main__``-module types
(a runtime property).  The pickling regression tests cover the
dynamic cases at runtime.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..project import ModuleInfo, ProjectIndex, dotted_parts
from ..rules import Finding

#: constructors whose arguments become worker payloads.
PAYLOAD_CONSTRUCTORS = frozenset({"SimJob", "RunSummary"})

#: methods that move their arguments onto a worker pipe.
SUBMIT_METHODS = frozenset({"submit", "apply_async", "send", "map_async"})

#: callables producing OS handles / locks (PX3).
HANDLE_FACTORIES = frozenset(
    {
        "open", "Lock", "RLock", "Condition", "Semaphore",
        "BoundedSemaphore", "Event", "socket",
    }
)

#: module-name fragments marking cross-process spool code (PX4).
SPOOL_MODULE_MARKERS = ("bus", "spool")

#: methods that publish file content in one (non-atomic) call (PX4).
NON_ATOMIC_WRITERS = frozenset({"write_text", "write_bytes"})

#: constructor names treated as mutable-container factories (PX2).
MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

#: method names that mutate their receiver in place (PX2).
MUTATING_METHODS = frozenset(
    {
        "append", "add", "update", "pop", "popitem", "setdefault", "clear",
        "extend", "remove", "insert", "discard", "appendleft",
    }
)


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        return name in MUTABLE_FACTORIES
    return False


def _is_handle_factory(node: ast.expr) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    name = None
    if isinstance(node.func, ast.Name):
        name = node.func.id
    elif isinstance(node.func, ast.Attribute):
        name = node.func.attr
    return name if name in HANDLE_FACTORIES else None


def _mutable_globals(module: ModuleInfo) -> Set[str]:
    """Module-level names bound to mutable containers."""
    names: Set[str] = set()
    if module.tree is None:
        return names
    for node in module.tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not _is_mutable_literal(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


class _PayloadScanner(ast.NodeVisitor):
    """PX1/PX3 payload-position checks inside one module."""

    def __init__(self, module: ModuleInfo, index: ProjectIndex) -> None:
        self.module = module
        self.index = index
        self.findings: List[Finding] = []
        self._local_defs: List[Set[str]] = []

    # track names defined locally inside each function scope
    def _visit_function(self, node) -> None:
        self._local_defs.append(
            {
                child.name
                for child in ast.walk(node)
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                and child is not node
            }
        )
        self.generic_visit(node)
        self._local_defs.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if self.module.allows(node.lineno, rule):
            return
        symbol = (
            self.index.enclosing_function(self.module, node.lineno)
            or self.module.name
        )
        self.findings.append(
            Finding(
                path=self.module.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=rule,
                message=message,
                symbol=symbol,
            )
        )

    def _scan_payload_args(self, call: ast.Call, where: str) -> None:
        locals_here = self._local_defs[-1] if self._local_defs else set()
        values = list(call.args) + [kw.value for kw in call.keywords]
        for value in values:
            for node in ast.walk(value):
                if isinstance(node, (ast.Lambda, ast.GeneratorExp)):
                    kind = (
                        "lambda"
                        if isinstance(node, ast.Lambda)
                        else "generator expression"
                    )
                    self._report(
                        "PX1",
                        node,
                        f"{kind} in {where}: not picklable, cannot cross "
                        "a worker boundary",
                    )
                elif isinstance(node, ast.Name) and node.id in locals_here:
                    self._report(
                        "PX1",
                        node,
                        f"locally-defined {node.id!r} in {where}: local "
                        "functions/classes are not picklable",
                    )
                else:
                    handle = _is_handle_factory(node)
                    if handle is not None:
                        self._report(
                            "PX3",
                            node,
                            f"{handle}(...) handle in {where}: OS handles "
                            "and locks are not picklable",
                        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in PAYLOAD_CONSTRUCTORS:
                self._scan_payload_args(node, f"{func.id}(...) payload")
            elif func.id == "Process":
                for kw in node.keywords:
                    if kw.arg == "target" and isinstance(kw.value, ast.Lambda):
                        self._report(
                            "PX1",
                            kw.value,
                            "lambda as Process target: not picklable under "
                            "the spawn/forkserver start methods",
                        )
        elif isinstance(func, ast.Attribute) and func.attr in SUBMIT_METHODS:
            receiver = ".".join(dotted_parts(func.value))
            self._scan_payload_args(
                node, f"{receiver}.{func.attr}(...) payload"
            )
        self.generic_visit(node)


class _GlobalWriteScanner(ast.NodeVisitor):
    """PX2: function-scope writes to module-level mutable globals."""

    def __init__(
        self, module: ModuleInfo, index: ProjectIndex, mutable: Set[str]
    ) -> None:
        self.module = module
        self.index = index
        self.mutable = mutable
        self.findings: List[Finding] = []
        self._function_depth = 0
        self._global_decls: List[Set[str]] = []

    def _visit_function(self, node) -> None:
        self._function_depth += 1
        self._global_decls.append(set())
        self.generic_visit(node)
        self._global_decls.pop()
        self._function_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Global(self, node: ast.Global) -> None:
        if self._global_decls:
            self._global_decls[-1].update(node.names)

    def _report(self, node: ast.AST, name: str, how: str) -> None:
        if self.module.allows(node.lineno, "PX2"):
            return
        symbol = (
            self.index.enclosing_function(self.module, node.lineno)
            or self.module.name
        )
        self.findings.append(
            Finding(
                path=self.module.rel,
                line=node.lineno,
                col=node.col_offset,
                rule="PX2",
                message=(
                    f"module-level mutable global {name!r} {how} after "
                    "import: shared state between jobs in-process and "
                    "divergent state across worker processes"
                ),
                symbol=symbol,
            )
        )

    def _target_global(self, target: ast.expr) -> Optional[str]:
        """Module-global name a subscript/attribute write lands on."""
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            if target.value.id in self.mutable:
                return target.value.id
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._function_depth:
            declared = set().union(*self._global_decls) if self._global_decls else set()
            for target in node.targets:
                name = self._target_global(target)
                if name is not None:
                    self._report(node, name, "item-assigned")
                elif (
                    isinstance(target, ast.Name)
                    and target.id in declared
                    and target.id in self.mutable
                ):
                    self._report(node, target.id, "rebound via 'global'")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._function_depth:
            name = self._target_global(node.target)
            if name is not None:
                self._report(node, name, "item-augmented")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self._function_depth:
            for target in node.targets:
                name = self._target_global(target)
                if name is not None:
                    self._report(node, name, "item-deleted")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._function_depth
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.mutable
        ):
            self._report(
                node, node.func.value.id, f"mutated via .{node.func.attr}()"
            )
        self.generic_visit(node)


def _is_spool_module(module: ModuleInfo) -> bool:
    """Does this module hold cross-process spool/bus code (PX4 scope)?"""
    tail = module.name.rsplit(".", 1)[-1]
    return any(marker in tail for marker in SPOOL_MODULE_MARKERS)


class _SpoolWriteScanner(ast.NodeVisitor):
    """PX4: non-atomic file publication inside a spool/bus module."""

    def __init__(self, module: ModuleInfo, index: ProjectIndex) -> None:
        self.module = module
        self.index = index
        self.findings: List[Finding] = []

    def _report(self, node: ast.AST, message: str) -> None:
        if self.module.allows(node.lineno, "PX4"):
            return
        symbol = (
            self.index.enclosing_function(self.module, node.lineno)
            or self.module.name
        )
        # functions named _atomic* ARE the sanctioned temp-file +
        # os.replace implementation; everything else must call them.
        if "_atomic" in (symbol or ""):
            return
        self.findings.append(
            Finding(
                path=self.module.rel,
                line=node.lineno,
                col=node.col_offset,
                rule="PX4",
                message=message,
                symbol=symbol,
            )
        )

    @staticmethod
    def _write_mode(call: ast.Call) -> Optional[str]:
        """The literal mode string of an ``open`` call, if it writes."""
        mode: Optional[ast.expr] = None
        if len(call.args) >= 2:
            mode = call.args[1]
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if mode is None:
            return None  # default "r": read-only
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value if set(mode.value) & set("wax+") else None
        return "<dynamic>"  # unprovably read-only: flag it

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = self._write_mode(node)
            if mode is not None:
                self._report(
                    node,
                    f"open(..., {mode!r}) in a spool module writes in "
                    "place: concurrent readers in other processes see a "
                    "torn file; publish via an _atomic* helper "
                    "(temp file + os.replace) or os.open with O_EXCL",
                )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in NON_ATOMIC_WRITERS
        ):
            self._report(
                node,
                f".{func.attr}(...) in a spool module writes in place: "
                "concurrent readers in other processes see a torn "
                "file; publish via an _atomic* helper "
                "(temp file + os.replace)",
            )
        self.generic_visit(node)


def _module_level_handles(
    module: ModuleInfo, index: ProjectIndex
) -> List[Finding]:
    """PX3: handles/locks bound at module scope."""
    findings: List[Finding] = []
    if module.tree is None:
        return findings
    for node in module.tree.body:
        value = None
        if isinstance(node, ast.Assign):
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            value = node.value
        if value is None:
            continue
        handle = _is_handle_factory(value)
        if handle is None or module.allows(node.lineno, "PX3"):
            continue
        findings.append(
            Finding(
                path=module.rel,
                line=node.lineno,
                col=node.col_offset,
                rule="PX3",
                message=(
                    f"module-level {handle}(...) assignment: handles/locks "
                    "bound at import are duplicated by fork and missing "
                    "under spawn; create them per-process inside functions"
                ),
                symbol=module.name,
            )
        )
    return findings


def run_px_pass(index: ProjectIndex) -> List[Finding]:
    """Run the process-safety pass over an indexed project."""
    findings: List[Finding] = []
    for module in index.modules:
        if module.tree is None:
            continue
        payload = _PayloadScanner(module, index)
        payload.visit(module.tree)
        findings.extend(payload.findings)
        mutable = _mutable_globals(module)
        if mutable:
            writes = _GlobalWriteScanner(module, index, mutable)
            writes.visit(module.tree)
            findings.extend(writes.findings)
        findings.extend(_module_level_handles(module, index))
        if _is_spool_module(module):
            spool = _SpoolWriteScanner(module, index)
            spool.visit(module.tree)
            findings.extend(spool.findings)
    return findings


__all__ = [
    "HANDLE_FACTORIES",
    "MUTABLE_FACTORIES",
    "MUTATING_METHODS",
    "NON_ATOMIC_WRITERS",
    "PAYLOAD_CONSTRUCTORS",
    "SPOOL_MODULE_MARKERS",
    "SUBMIT_METHODS",
    "run_px_pass",
]
