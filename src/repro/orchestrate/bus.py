"""Filesystem message bus: distributed, crash-safe sweep execution.

The :class:`BusExecutor` turns a shared directory into a job queue.
The parent spools one JSON *envelope* per job into ``jobs/``;
independent worker processes — ``python -m repro.orchestrate worker
--bus <dir>``, launchable on any host that mounts the directory —
claim envelopes by atomically creating a *lease* file, execute the
referenced callable, publish a pickled result into ``results/`` and
withdraw the envelope.  Everything is plain files with atomic
create/replace semantics, so the bus needs no daemon, no sockets and
no third-party broker.

Crash safety is lease-based.  A worker heartbeats its lease (and its
``workers/<id>.json`` registration) by bumping the file mtime while it
executes.  The parent judges freshness *observer-relatively*: it
remembers the last mtime it saw and the local monotonic instant the
mtime last changed — never comparing remote wall clocks — and
reclaims a lease that has not changed for ``lease_timeout`` seconds:
the envelope is withdrawn, the reclaim is journalled (fsynced) to the
bus journal, and the job is reported as a crash so the scheduler's
normal retry path re-spools it for another worker.  SIGKILLing a
worker mid-job therefore loses nothing and duplicates nothing: its
lease goes stale, exactly one reclaim happens (the lease file is the
mutual exclusion), and the retry is a fresh attempt.

``lease_timeout`` must exceed the shared filesystem's mtime
propagation window — on NFS, the attribute-cache lifetime
(``actimeo``, commonly 3-60 seconds) — or the parent will reclaim
leases of perfectly healthy workers whose heartbeats it simply has
not seen yet.  The default is sized for that (see
:data:`DEFAULT_LEASE_TIMEOUT`); only lower it on a local-filesystem
bus, as the crash-safety tests do.

Publication ordering makes completion unambiguous: a worker writes
the result (atomic replace), *then* removes the envelope, *then*
frees the lease.  The parent always checks for a result before
reclaiming, so a worker that died after publishing is indistinguishable
from one that finished cleanly.  Both withdrawals are guarded: the
worker re-reads the envelope and the lease first, and deletes each
only if it still belongs to *this* attempt — after a reclaim, the
re-spooled envelope and any successor's lease are someone else's
records and survive the superseded attempt's cleanup.

Journals are single-writer by construction: each worker appends
claim records to its own ``journal.<worker_id>.jsonl`` and the parent
appends reclaims to ``journal.jsonl``, because append atomicity — the
property that keeps concurrent JSONL writers from interleaving — does
not hold on NFS.  Readers merge the ``journal*.jsonl`` family (see
:meth:`FileBus.journal_paths`).
"""

from __future__ import annotations

import base64
import importlib
import json
import os
import pickle
import platform
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ExecutorConfigError, OrchestrationError
from ..telemetry import get_logger
from .executor import Executor, ExecutorEvent
from .job import execute_job
from .manifest import STATUS_CLAIMED, STATUS_RECLAIMED, SweepManifest
from .pool import EVENT_CRASH, EVENT_ERROR, EVENT_OK, EVENT_TIMEOUT

log = get_logger("repro.orchestrate.bus")

#: bumped when the envelope layout changes incompatibly.
ENVELOPE_SCHEMA = 1

#: the default job executor shipped in envelopes.
DEFAULT_EXECUTE_REF = "repro.orchestrate.job:execute_job"

#: worker heartbeat period; must be well under any lease timeout.
DEFAULT_HEARTBEAT = 0.25

#: a lease whose mtime has not moved for this long (observer clock) is
#: considered abandoned and is reclaimed.  Deliberately generous — two
#: orders of magnitude over the heartbeat period — because a reclaim
#: that fires on a *healthy* worker re-executes its job: on network
#: filesystems the parent may not see heartbeat mtime changes for the
#: length of the mount's attribute-cache window (NFS ``actimeo``
#: defaults range from 3 to 60 seconds), so ``lease_timeout`` must
#: comfortably exceed that window, never approach the heartbeat.
DEFAULT_LEASE_TIMEOUT = 120 * DEFAULT_HEARTBEAT


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Publish ``data`` at ``path`` so readers see all of it or none.

    Spool files are read by other processes (possibly other hosts), so
    every publication goes through a same-directory temp file, fsync,
    and ``os.replace`` — the only write pattern allowed in bus modules
    (ReproCheck PX4 enforces this).
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(str(tmp), str(path))


def _unlink_quietly(path: Path) -> None:
    try:
        os.unlink(str(path))
    except OSError:
        pass


def execute_ref_of(execute: Callable[[Any], Any]) -> str:
    """``module:name`` reference for a callable shipped by name.

    Bus workers import the executor rather than unpickling it, so only
    module-level functions qualify — closures and methods have no
    address another process can resolve.
    """
    if isinstance(execute, str):
        return execute
    module = getattr(execute, "__module__", None)
    name = getattr(execute, "__qualname__", None) or getattr(
        execute, "__name__", None
    )
    if not module or not name or "<locals>" in name or "." in name:
        raise ExecutorConfigError(
            "the bus executor ships its execute callable by reference; "
            f"{execute!r} must be a module-level function"
        )
    return f"{module}:{name}"


def resolve_execute_ref(ref: str) -> Callable[[Any], Any]:
    module_name, _, attr = ref.partition(":")
    if not module_name or not attr:
        raise OrchestrationError(f"malformed execute reference {ref!r}")
    try:
        module = importlib.import_module(module_name)
        execute = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise OrchestrationError(
            f"cannot resolve execute reference {ref!r}: {exc}"
        ) from exc
    if not callable(execute):
        raise OrchestrationError(f"execute reference {ref!r} is not callable")
    return execute


def default_worker_id() -> str:
    return f"{platform.node() or 'host'}-{os.getpid()}"


class FileBus:
    """Path layout of one bus directory (shared by parent and workers)."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.jobs = self.root / "jobs"
        self.leases = self.root / "leases"
        self.results = self.root / "results"
        self.workers = self.root / "workers"
        self.journal = self.root / "journal.jsonl"

    def ensure(self) -> None:
        for directory in (self.jobs, self.leases, self.results, self.workers):
            directory.mkdir(parents=True, exist_ok=True)

    def job_path(self, key: str) -> Path:
        return self.jobs / f"{key}.json"

    def lease_path(self, key: str) -> Path:
        return self.leases / f"{key}.json"

    def result_path(self, key: str, attempt: int) -> Path:
        return self.results / f"{key}.{attempt}.pkl"

    def result_paths(self, key: str) -> List[Path]:
        return sorted(self.results.glob(f"{key}.*.pkl"))

    def worker_path(self, worker_id: str) -> Path:
        return self.workers / f"{worker_id}.json"

    def worker_journal(self, worker_id: str) -> Path:
        """A worker's private claim journal — one writer per file, so
        the bus never depends on cross-host append atomicity."""
        return self.root / f"journal.{worker_id}.jsonl"

    def journal_paths(self) -> List[Path]:
        """Every journal file on the bus: the parent's ``journal.jsonl``
        plus one ``journal.<worker_id>.jsonl`` per worker that ever
        claimed a job.  Audit readers merge the family."""
        return sorted(self.root.glob("journal*.jsonl"))


class _Freshness:
    """Observer-relative staleness for heartbeat files.

    Cross-host wall clocks cannot be compared, so freshness is judged
    by *change*: remember each file's last seen mtime and the local
    monotonic instant it changed; a file is stale once it has not
    changed for longer than the timeout on the observer's own clock.
    """

    def __init__(self) -> None:
        self._seen: Dict[str, Tuple[int, float]] = {}

    def age(self, name: str, mtime_ns: int, now: float) -> float:
        last = self._seen.get(name)
        if last is None or last[0] != mtime_ns:
            self._seen[name] = (mtime_ns, now)
            return 0.0
        return now - last[1]

    def forget(self, name: str) -> None:
        self._seen.pop(name, None)


class BusExecutor(Executor):
    """Executor backend over a :class:`FileBus` spool directory.

    ``spawn_workers`` local worker processes are started (and respawned
    if they die, recycled when ``max_jobs_per_worker`` retires them);
    pass 0 to rely entirely on externally launched workers — e.g. other
    hosts sharing the directory.
    """

    name = "bus"

    def __init__(
        self,
        bus_dir,
        execute: Callable[[Any], Any] = execute_job,
        spawn_workers: int = 0,
        timeout: Optional[float] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_jobs_per_worker: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        if lease_timeout <= 0:
            raise ExecutorConfigError("lease_timeout must be > 0")
        if max_jobs_per_worker is not None and max_jobs_per_worker < 1:
            raise ExecutorConfigError("max_jobs_per_worker must be >= 1")
        self.bus = FileBus(bus_dir)
        self.bus.ensure()
        self._execute_ref = execute_ref_of(execute)
        self._timeout = timeout
        self._lease_timeout = lease_timeout
        self._max_jobs = max_jobs_per_worker
        self._cache_dir = str(cache_dir) if cache_dir else None
        self._journal = SweepManifest(self.bus.journal, fsync=True)
        self._fresh = _Freshness()
        #: key -> {"attempt": n, "claim_mono": first-lease-sighting}
        self._inflight: Dict[str, Dict[str, Any]] = {}
        #: per-key attempt counter; survives retries so result files
        #: from superseded attempts can never be mistaken for current.
        self._attempts: Dict[str, int] = {}
        self._spawn_target = max(0, int(spawn_workers))
        self._procs: List[subprocess.Popen] = []
        self._seq = 0
        self._closed = False
        self._respawns = 0
        self._recycles = 0
        self._lease_reclaims = 0
        try:
            for _ in range(self._spawn_target):
                self._procs.append(self._spawn())
        except OrchestrationError:
            self.close()
            raise

    # -- worker process management ---------------------------------------------
    def _spawn(self) -> subprocess.Popen:
        self._seq += 1
        worker_id = f"spawn-{os.getpid()}-{self._seq}"
        cmd = [
            sys.executable,
            "-m",
            "repro.orchestrate",
            "worker",
            "--bus",
            str(self.bus.root),
            "--worker-id",
            worker_id,
        ]
        if self._max_jobs is not None:
            cmd += ["--max-jobs", str(self._max_jobs)]
        # repro: allow[DX3] — building the child's env, not job identity
        env = dict(os.environ)
        # Workers must import the same modules the parent resolved —
        # including test-support modules pytest put on sys.path.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        try:
            return subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL)
        except OSError as exc:
            raise OrchestrationError(
                f"cannot start bus worker: {exc}"
            ) from exc

    def _reap_spawned(self) -> None:
        """Respawn spawned workers that exited; classify why they did.

        Exit 0 with a jobs cap is a planned recycle; anything else
        (crash, SIGKILL) counts against the ``respawns`` health signal
        the scheduler uses to give up on a dying fleet.
        """
        if self._closed:
            return
        for index, proc in enumerate(self._procs):
            code = proc.poll()
            if code is None:
                continue
            if code == 0 and self._max_jobs is not None:
                self._recycles += 1
            else:
                self._respawns += 1
            self._procs[index] = self._spawn()

    def _kill_spawned(self, pid: Optional[int]) -> None:
        if pid is None:
            return
        for proc in self._procs:
            if proc.pid == pid and proc.poll() is None:
                proc.kill()
                proc.wait()
                return

    # -- executor protocol -----------------------------------------------------
    def submit(
        self,
        key: str,
        job: Any,
        trace_id: Optional[str] = None,
        label: Optional[str] = None,
    ) -> None:
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        # Results from earlier runs or superseded attempts must not be
        # mistaken for this submission's outcome.
        for stale in self.bus.result_paths(key):
            _unlink_quietly(stale)
        envelope = {
            "schema": ENVELOPE_SCHEMA,
            "key": key,
            "attempt": attempt,
            "execute": self._execute_ref,
            "cache_dir": self._cache_dir,
            "label": label,
            "trace_id": trace_id,
            "job": base64.b64encode(
                pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii"),
        }
        _atomic_write_bytes(
            self.bus.job_path(key),
            (json.dumps(envelope, sort_keys=True) + "\n").encode("utf-8"),
        )
        self._inflight[key] = {"attempt": attempt, "claim_mono": None}

    def poll(self, wait: float = 0.05) -> List[ExecutorEvent]:
        self._reap_spawned()
        events: List[ExecutorEvent] = []
        now = time.monotonic()
        for key in list(self._inflight):
            state = self._inflight[key]
            event = self._check_result(key, state)
            if event is not None:
                events.append(event)
                continue
            lease = self.bus.lease_path(key)
            try:
                stat = os.stat(str(lease))
            except OSError:
                stat = None
            if stat is not None:
                if state["claim_mono"] is None:
                    state["claim_mono"] = now
                age = self._fresh.age(str(lease), stat.st_mtime_ns, now)
                if age > self._lease_timeout:
                    # The worker may have published and died before it
                    # could free the lease — a result always wins.
                    event = self._check_result(key, state)
                    if event is not None:
                        events.append(event)
                    else:
                        events.append(self._reclaim(key, state))
                    continue
            if (
                self._timeout is not None
                and state["claim_mono"] is not None
                and now - state["claim_mono"] > self._timeout
            ):
                events.append(self._expire(key, state))
        if not events:
            time.sleep(max(0.0, min(wait, 0.05)))
        return events

    def _check_result(
        self, key: str, state: Dict[str, Any]
    ) -> Optional[ExecutorEvent]:
        path = self.bus.result_path(key, state["attempt"])
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            kind, payload = pickle.loads(raw)
        except Exception:  # noqa: BLE001 — corrupt result => retryable
            kind, payload = EVENT_CRASH, "unreadable result envelope"
        self._forget(key)
        return (kind, key, payload)

    def _reclaim(self, key: str, state: Dict[str, Any]) -> ExecutorEvent:
        worker = self._lease_field(key, "worker")
        self._journal.record(
            key,
            STATUS_RECLAIMED,
            attempts=state["attempt"],
            worker=worker,
            fsync=True,
        )
        log.warning(
            "lease_reclaimed", key=key, worker=worker, attempt=state["attempt"]
        )
        self._lease_reclaims += 1
        self._forget(key)
        return (EVENT_CRASH, key, f"bus worker lease expired ({worker})")

    def _expire(self, key: str, state: Dict[str, Any]) -> ExecutorEvent:
        pid = self._lease_field(key, "pid")
        self._forget(key)
        # Only workers we spawned can be killed; a remote worker's
        # stale attempt is simply ignored when it eventually lands.
        self._kill_spawned(pid)
        return (
            EVENT_TIMEOUT,
            key,
            f"job exceeded the {self._timeout:g}s timeout",
        )

    def _lease_field(self, key: str, field: str) -> Optional[Any]:
        try:
            data = json.loads(self.bus.lease_path(key).read_text("utf-8"))
        except (OSError, ValueError):
            return None
        return data.get(field) if isinstance(data, dict) else None

    def _forget(self, key: str) -> None:
        """Withdraw every spool record of ``key`` (job first, so no
        worker can claim between the removals)."""
        _unlink_quietly(self.bus.job_path(key))
        for path in self.bus.result_paths(key):
            _unlink_quietly(path)
        lease = self.bus.lease_path(key)
        _unlink_quietly(lease)
        self._fresh.forget(str(lease))
        self._inflight.pop(key, None)

    def cancel(self, key: str) -> bool:
        if key not in self._inflight:
            return False
        if self.bus.lease_path(key).exists():
            return False  # already claimed; it will run to completion
        self._forget(key)
        return True

    def close(self) -> None:
        self._closed = True
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs = []

    # -- liveness --------------------------------------------------------------
    def _live_workers(self) -> int:
        """Workers with a fresh registration heartbeat, observer-relative."""
        now = time.monotonic()
        live = 0
        for path in self.bus.workers.glob("*.json"):
            try:
                stat = os.stat(str(path))
            except OSError:
                continue
            if self._fresh.age(str(path), stat.st_mtime_ns, now) <= self._lease_timeout:
                live += 1
        return live

    @property
    def size(self) -> int:
        spawned = sum(1 for proc in self._procs if proc.poll() is None)
        return max(self._live_workers(), spawned, 1)

    @property
    def busy_count(self) -> int:
        return len(self._inflight)

    @property
    def respawns(self) -> int:
        return self._respawns

    @property
    def recycles(self) -> int:
        return self._recycles

    @property
    def lease_reclaims(self) -> int:
        return self._lease_reclaims

    def liveness(self) -> Dict[str, Any]:
        data = super().liveness()
        data["live_workers"] = self._live_workers()
        data["spool_depth"] = sum(1 for _ in self.bus.jobs.glob("*.json"))
        return data


class BusWorker:
    """One job-claiming worker process over a :class:`FileBus`.

    Runs until stopped, until ``max_jobs`` retires it (exit 0, the
    recycle signal) or until ``idle_exit`` seconds pass with nothing to
    claim.  A heartbeat thread bumps the worker registration and the
    current lease mtime so observers can tell it is alive.
    """

    def __init__(
        self,
        bus_dir,
        worker_id: Optional[str] = None,
        max_jobs: Optional[int] = None,
        idle_exit: Optional[float] = None,
        heartbeat: float = DEFAULT_HEARTBEAT,
        poll_interval: float = 0.05,
    ) -> None:
        self.bus = FileBus(bus_dir)
        self.bus.ensure()
        self.worker_id = worker_id or default_worker_id()
        self.max_jobs = max_jobs
        self.idle_exit = idle_exit
        self.heartbeat = heartbeat
        self.poll_interval = poll_interval
        self.jobs_done = 0
        self._journal = SweepManifest(
            self.bus.worker_journal(self.worker_id), fsync=True
        )
        self._stop = threading.Event()
        self._lease_lock = threading.Lock()
        self._current_lease: Optional[Path] = None
        self._registration = self.bus.worker_path(self.worker_id)

    # -- lifecycle -------------------------------------------------------------
    def run(self) -> int:
        _atomic_write_bytes(
            self._registration,
            (
                json.dumps(
                    {"worker": self.worker_id, "pid": os.getpid()},
                    sort_keys=True,
                )
                + "\n"
            ).encode("utf-8"),
        )
        beat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        beat.start()
        idle_since = time.monotonic()
        try:
            while not self._stop.is_set():
                claimed = self._claim_next()
                if claimed is None:
                    if (
                        self.idle_exit is not None
                        and time.monotonic() - idle_since > self.idle_exit
                    ):
                        return 0
                    time.sleep(self.poll_interval)
                    continue
                self._execute_one(*claimed)
                self.jobs_done += 1
                idle_since = time.monotonic()
                if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                    return 0  # planned retirement: the recycle signal
            return 0
        finally:
            self._stop.set()
            beat.join(1.0)
            _unlink_quietly(self._registration)

    def stop(self) -> None:
        self._stop.set()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat):
            with self._lease_lock:
                lease = self._current_lease
            for path in (lease, self._registration):
                if path is None:
                    continue
                try:
                    os.utime(str(path), None)
                except OSError:
                    pass

    # -- claiming --------------------------------------------------------------
    def _claim_next(self) -> Optional[Tuple[str, Dict[str, Any], Path]]:
        for path in sorted(self.bus.jobs.glob("*.json")):
            key = path.stem
            lease = self.bus.lease_path(key)
            if lease.exists():
                continue
            if not self._try_claim(lease):
                continue
            # The claim only wins if the envelope still exists — the
            # parent may have cancelled or reclaimed while we raced.
            try:
                envelope = json.loads(path.read_text("utf-8"))
            except (OSError, ValueError):
                _unlink_quietly(lease)
                continue
            return key, envelope, lease
        return None

    def _try_claim(self, lease: Path) -> bool:
        """Atomically create the lease file; False if someone else won.

        O_EXCL creation is the bus's mutual exclusion: exactly one
        worker can own a job, across processes and hosts.  The lease is
        fsynced so a host power-cut cannot resurrect an unclaimed job
        under two owners.
        """
        try:
            fd = os.open(
                str(lease), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            return False
        except OSError:
            return False
        try:
            os.write(
                fd,
                (
                    json.dumps(
                        {"worker": self.worker_id, "pid": os.getpid()},
                        sort_keys=True,
                    )
                    + "\n"
                ).encode("utf-8"),
            )
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    # -- execution -------------------------------------------------------------
    def _execute_one(
        self, key: str, envelope: Dict[str, Any], lease: Path
    ) -> None:
        attempt = int(envelope.get("attempt", 1))
        with self._lease_lock:
            self._current_lease = lease
        self._journal.record(
            key,
            STATUS_CLAIMED,
            attempts=attempt,
            worker=self.worker_id,
            label=envelope.get("label"),
            trace_id=envelope.get("trace_id"),
            fsync=True,
        )
        job = None
        try:
            job = pickle.loads(base64.b64decode(envelope["job"]))
            execute = resolve_execute_ref(
                envelope.get("execute") or DEFAULT_EXECUTE_REF
            )
            summary = execute(job)
        except BaseException as exc:  # noqa: BLE001 — must report, not die
            kind: str = EVENT_ERROR
            payload: Any = f"{type(exc).__name__}: {exc}"
        else:
            kind, payload = EVENT_OK, summary
            self._publish_cache(envelope, key, job, summary)
        _atomic_write_bytes(
            self.bus.result_path(key, attempt),
            pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL),
        )
        # Publication order: result visible -> envelope withdrawn ->
        # lease freed.  An observer can then never see "no result, no
        # envelope, no lease" for a job that actually completed.
        #
        # Both withdrawals are guarded against reclaim: if the parent
        # judged this lease stale (suspended process, NFS mtime lag)
        # and re-spooled the job, the envelope on the bus now carries
        # attempt N+1 and the lease may belong to a successor worker —
        # deleting either would strand the new attempt (an envelope
        # nobody can claim, or a duplicate-claim window), so a
        # superseded attempt must only remove records it still owns.
        if self._spooled_attempt(key) == attempt:
            _unlink_quietly(self.bus.job_path(key))
        with self._lease_lock:
            self._current_lease = None
        if self._owns_lease(lease):
            _unlink_quietly(lease)

    def _spooled_attempt(self, key: str) -> Optional[int]:
        """The attempt number of the envelope currently spooled for
        ``key``; None if there is none (or it is unreadable)."""
        try:
            envelope = json.loads(
                self.bus.job_path(key).read_text("utf-8")
            )
        except (OSError, ValueError):
            return None
        if not isinstance(envelope, dict):
            return None
        try:
            return int(envelope.get("attempt", 1))
        except (TypeError, ValueError):
            return None

    def _owns_lease(self, lease: Path) -> bool:
        try:
            data = json.loads(lease.read_text("utf-8"))
        except (OSError, ValueError):
            return False
        return isinstance(data, dict) and data.get("worker") == self.worker_id

    def _publish_cache(
        self, envelope: Dict[str, Any], key: str, job: Any, summary: Any
    ) -> None:
        """Store the summary into the shared content-addressed cache.

        Best-effort: the scheduler stores every completion anyway, and
        because :meth:`ResultCache.store` is canonicalising and atomic,
        both writers produce byte-identical files.
        """
        cache_dir = envelope.get("cache_dir")
        if not cache_dir:
            return
        try:
            from .cache import ResultCache

            ResultCache(cache_dir).store(key, summary)
        except Exception:  # noqa: BLE001 — worker-side store is advisory
            log.warning("worker_cache_store_failed", key=key)


__all__ = [
    "BusExecutor",
    "BusWorker",
    "DEFAULT_EXECUTE_REF",
    "DEFAULT_HEARTBEAT",
    "DEFAULT_LEASE_TIMEOUT",
    "ENVELOPE_SCHEMA",
    "FileBus",
    "execute_ref_of",
    "resolve_execute_ref",
]
