"""The orchestrator: expand, deduplicate, execute, retry, resume.

:class:`Orchestrator.run` takes a flat list of jobs (usually
:class:`~repro.orchestrate.job.SimJob`), collapses duplicates by job
key, serves everything already in the result cache, and executes only
the remainder on a pluggable :class:`~repro.orchestrate.executor.
Executor` backend — in-process (``serial``), a local process pool
(``pool``, the default for ``jobs > 1``), or a shared-directory
message bus with workers on any host (``bus``).  The scheduling loop
is backend-neutral: dispatch while the backend has capacity, drain
terminal events, retry failures with exponential backoff up to a
bounded number of attempts.  Jobs that keep failing are journalled to
the :class:`~repro.orchestrate.manifest.SweepManifest` and reported in
one :class:`~repro.errors.OrchestrationError` at the end (completed
work stays cached, so a re-run only re-executes the failures).  If a
multi-process backend cannot be built *by the environment* (no
subprocesses on this box, unreachable bus) or keeps losing workers,
the sweep degrades to serial execution — with a prominent warning —
instead of aborting: slower, never wrong.  A *misconfigured* backend
(unknown executor kind, bus with no directory) raises
:class:`~repro.errors.ExecutorConfigError` instead of degrading, so a
typo cannot silently serialize a sweep the user believes is
distributed.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from collections import deque

from ..errors import ExecutorConfigError, OrchestrationError
from ..perf.phase import (
    PHASE_EXECUTE_JOB,
    PHASE_ORCHESTRATE,
    PHASE_POOL_WAIT,
)
from ..telemetry import get_logger
from .cache import ResultCache
from .job import execute_job, job_key
from .executor import Executor, SerialExecutor, resolve_executor
from .manifest import (
    STATUS_CANCELLED,
    STATUS_DONE,
    STATUS_FAILED,
    SweepManifest,
)
from .pool import EVENT_OK, WorkerPool

log = get_logger("repro.orchestrate")

#: give up respawning workers after this many deaths per sweep and
#: fall back to serial execution — a backend that keeps dying (OOM
#: killer, fork bombs elsewhere on the box) must not spin forever.
MAX_RESPAWNS = 8


class Orchestrator:
    """Parallel, fault-tolerant executor for a batch of jobs."""

    def __init__(
        self,
        jobs: int = 1,
        execute: Callable[[Any], Any] = execute_job,
        key_fn: Callable[[Any], str] = job_key,
        cache: Optional[ResultCache] = None,
        manifest: Optional[SweepManifest] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.25,
        reporter=None,
        context=None,
        telemetry=None,
        phase_timer=None,
        on_job_done: Optional[Callable[[str, str, Any, int], None]] = None,
        executor=None,
        bus_dir: Optional[str] = None,
        bus_spawn: Optional[int] = None,
        lease_timeout: Optional[float] = None,
        max_jobs_per_worker: Optional[int] = None,
    ) -> None:
        if retries < 0:
            raise OrchestrationError("retries must be >= 0")
        if backoff < 0:
            raise OrchestrationError("backoff must be >= 0")
        self.jobs = max(1, int(jobs))
        self.execute = execute
        self.key_fn = key_fn
        self.cache = cache
        self.manifest = manifest
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.reporter = reporter
        self.context = context
        #: execution backend: None (serial for jobs=1, pool otherwise),
        #: a kind name (``"serial"``/``"pool"``/``"bus"``), or a
        #: pre-built :class:`Executor` instance.
        self.executor = executor
        self.bus_dir = bus_dir
        #: local bus workers to spawn (None = one per scheduler slot;
        #: 0 = rely on externally launched workers).
        self.bus_spawn = bus_spawn
        self.lease_timeout = lease_timeout
        self.max_jobs_per_worker = max_jobs_per_worker
        #: optional :class:`repro.telemetry.RunTelemetry` collecting
        #: per-job provenance (wall/CPU time, retries, cache hits) for
        #: the Chrome trace and the enriched run manifest.
        self.telemetry = telemetry
        #: optional :class:`repro.perf.PhaseTimer` attributing the
        #: sweep's wall time to orchestrate_overhead / execute_job /
        #: pool_wait; None keeps scheduling loops hook-free.
        self.phase_timer = phase_timer
        #: broker hook: called as ``(key, status, payload, attempts)``
        #: after every terminal job outcome — the RunSummary for
        #: ``"done"``, the error string for ``"failed"`` — so a service
        #: layer can stream per-job digests without wrapping ``run``.
        self.on_job_done = on_job_done
        #: key -> request trace id (repro.obs).  Callers that mint a
        #: trace per request (the service broker, RunTelemetry-backed
        #: sweeps) register ids here so retry/failure diagnostics and
        #: manifest journal lines carry the join key; empty means
        #: untraced and costs nothing.
        self.trace_ids: Dict[str, str] = {}
        #: key -> final error message of permanently failed jobs (last run).
        self.failures: Dict[str, str] = {}
        #: key -> reason of jobs cancelled while still queued (last run).
        self.cancelled: Dict[str, str] = {}
        #: keys whose *queued* execution should be skipped.  A plain set
        #: mutated only via :meth:`cancel`; membership tests happen in
        #: the scheduling loops, so a cancel from another thread takes
        #: effect at the next dispatch decision (in-flight jobs finish).
        self._cancel_requested: set = set()
        #: jobs actually executed (not served from cache) in the last
        #: run — the counter service/e2e tests assert dedup against.
        self.executed_count = 0
        #: host digests of executed jobs (cache hits carry none); the
        #: raw material for sweep-level throughput aggregation.
        self.host_digests: List[Dict[str, Any]] = []
        self._completed = 0
        self._total = 0
        self._workers = 1
        self._backend: Optional[str] = None
        #: key -> sweep-relative wall time the job first started.
        self._started: Dict[str, float] = {}

    # -- public API ------------------------------------------------------------
    def run(
        self, sim_jobs: Sequence[Any], raise_on_failure: bool = True
    ) -> Dict[str, Any]:
        """Execute ``sim_jobs``; return ``{job key: result}``.

        Duplicate keys are executed once.  Keys already in the result
        cache are served from it without executing anything — which is
        also the resume path: an interrupted sweep re-run with the same
        cache only executes its unfinished jobs.
        """
        timer = self.phase_timer
        if timer is not None:
            timer.enter(PHASE_ORCHESTRATE)
        try:
            return self._run(sim_jobs, raise_on_failure)
        finally:
            if timer is not None:
                timer.exit()

    def _run(
        self, sim_jobs: Sequence[Any], raise_on_failure: bool
    ) -> Dict[str, Any]:
        ordered: Dict[str, Any] = {}
        for job in sim_jobs:
            ordered.setdefault(self.key_fn(job), job)
        results: Dict[str, Any] = {}
        if self.cache is not None:
            for key in ordered:
                hit = self.cache.load(key)
                if hit is not None:
                    results[key] = hit
                    if self.telemetry is not None:
                        self.telemetry.note_cached(key, self._label(ordered[key]))
        pending = [(key, job) for key, job in ordered.items() if key not in results]
        self.failures = {}
        self.cancelled = {}
        self.executed_count = 0
        self._total = len(ordered)
        self._completed = len(results)
        self._workers = min(self.jobs, len(pending)) or 1
        if self.reporter is not None:
            self.reporter.start(total=self._total, cached=self._completed)
        try:
            if pending:
                try:
                    executor = self._make_executor()
                except ExecutorConfigError:
                    # A misconfigured backend (unknown kind, bus with
                    # no directory) must fail loudly — degrading would
                    # run a sweep the user believes is distributed
                    # single-threaded, with no sign anything is off.
                    raise
                except OrchestrationError as exc:
                    # The *environment* could not build the backend
                    # (no subprocesses on this box, unreachable bus);
                    # degrade to serial — slower, never wrong — and
                    # say so prominently.
                    log.warning(
                        "executor_degraded",
                        requested=self._requested_backend(),
                        actual="serial",
                        error=str(exc),
                    )
                    executor = SerialExecutor(self.execute)
                if isinstance(executor, SerialExecutor):
                    self._run_loop(pending, results, executor)
                else:
                    try:
                        self._run_loop(pending, results, executor)
                    except OrchestrationError:
                        # The backend kept losing workers mid-sweep;
                        # degrade to a serial pass over whatever is
                        # still undecided.
                        remaining = [
                            (key, job)
                            for key, job in pending
                            if key not in results
                            and key not in self.failures
                            and key not in self.cancelled
                        ]
                        self._run_loop(
                            remaining, results, SerialExecutor(self.execute)
                        )
        finally:
            if self.reporter is not None:
                self.reporter.finish()
        if self.failures and raise_on_failure:
            details = "; ".join(
                f"{self._label(ordered[key])}: {error}"
                for key, error in self.failures.items()
            )
            raise OrchestrationError(
                f"{len(self.failures)} job(s) permanently failed "
                f"after {self.retries + 1} attempt(s) each: {details}"
            )
        return results

    def cancel(self, keys) -> None:
        """Drain ``keys`` from the queue without killing in-flight work.

        Thread-safe (a set update under the GIL): a service thread can
        cancel while :meth:`run` executes on another.  Only jobs still
        *queued* are affected — each is skipped at its next dispatch
        decision and recorded in :attr:`cancelled` (and the manifest)
        instead of executing; jobs already on a worker run to
        completion, so their results still land in the shared cache.
        """
        self._cancel_requested.update(keys)

    def _cancel_if_requested(self, key: str, job: Any) -> bool:
        if key not in self._cancel_requested:
            return False
        self.cancelled[key] = "cancelled while queued"
        trace_id = self._trace_id(key)
        log.info(
            "job_cancelled", key=key, label=self._label(job), trace_id=trace_id
        )
        if self.manifest is not None:
            self.manifest.record(
                key,
                STATUS_CANCELLED,
                label=self._label(job),
                category=self._category(job),
                trace_id=trace_id,
            )
        if self.on_job_done is not None:
            self.on_job_done(key, STATUS_CANCELLED, "cancelled while queued", 0)
        self._report()
        return True

    # -- execution -------------------------------------------------------------
    def _requested_backend(self) -> str:
        """The backend name this run was configured for (log context)."""
        if isinstance(self.executor, Executor):
            return self.executor.name
        if isinstance(self.executor, str):
            return self.executor
        return "serial" if self.jobs <= 1 else "pool"

    def _make_executor(self) -> Executor:
        """Build the configured backend for this run.

        ``WorkerPool`` is resolved through this module's global so
        tests can assert a serial run never constructs one.
        """
        return resolve_executor(
            self.executor,
            self._workers,
            self.execute,
            timeout=self.timeout,
            context=self.context,
            bus_dir=self.bus_dir,
            bus_spawn=self.bus_spawn,
            max_jobs_per_worker=self.max_jobs_per_worker,
            cache_dir=getattr(self.cache, "directory", None),
            lease_timeout=self.lease_timeout,
            pool_factory=WorkerPool,
        )

    def _run_loop(
        self,
        pending: Sequence[Tuple[str, Any]],
        results: Dict[str, Any],
        executor: Executor,
    ) -> None:
        """The backend-neutral scheduling loop.

        Dispatch from the queue while the backend has capacity
        (honouring per-job backoff windows), drain terminal events,
        and classify each: success completes, failure retries until
        the attempt budget is spent.  Per-job timeouts are the
        backend's job (in-process serial execution, documented, cannot
        enforce them).  A ``BaseException`` escaping an inline backend
        — ``KeyboardInterrupt`` killing a serial sweep — propagates:
        the manifest already holds every completed job, so the re-run
        resumes instead of re-executing.
        """
        queue = deque(pending)
        jobs_by_key = dict(pending)
        attempts: Dict[str, int] = {key: 0 for key, _ in pending}
        ready_at: Dict[str, float] = {}
        self._workers = executor.size
        self._backend = executor.name
        inflight: set = set()
        try:
            while queue or inflight:
                now = time.perf_counter()
                for _ in range(len(queue)):
                    if not executor.has_idle:
                        break
                    key, job = queue.popleft()
                    if self._cancel_if_requested(key, job):
                        continue
                    if ready_at.get(key, 0.0) <= now:
                        self._started.setdefault(key, self._now())
                        executor.submit(
                            key,
                            job,
                            trace_id=self._trace_id(key),
                            label=self._label(job),
                        )
                        inflight.add(key)
                    else:
                        queue.append((key, job))
                if not inflight and queue:
                    # everything is waiting out its backoff window
                    wake = min(ready_at.get(key, 0.0) for key, _ in queue)
                    time.sleep(max(0.0, min(wake - now, self.backoff or 0.05)))
                    continue
                timer = self.phase_timer
                if timer is not None:
                    # An inline backend executes during poll, so its
                    # poll time *is* execute_job; blocking on remote
                    # workers is pool_wait — a saturated backend should
                    # show high pool_wait, not a slow scheduler.
                    phase = (
                        PHASE_EXECUTE_JOB if executor.inline else PHASE_POOL_WAIT
                    )
                    timer.enter(phase)
                    try:
                        events = executor.poll(0.05)
                    finally:
                        timer.exit()
                else:
                    events = executor.poll(0.05)
                for kind, key, payload in events:
                    job = jobs_by_key[key]
                    inflight.discard(key)
                    attempts[key] += 1
                    if kind == EVENT_OK:
                        self._complete(key, job, payload, attempts[key], results)
                    elif attempts[key] > self.retries:
                        self._fail(key, job, str(payload), attempts[key])
                    else:
                        log.warning(
                            "job_retry",
                            key=key,
                            label=self._label(job),
                            attempt=attempts[key],
                            error=str(payload),
                            trace_id=self._trace_id(key),
                        )
                        ready_at[key] = time.perf_counter() + self.backoff * (
                            2 ** (attempts[key] - 1)
                        )
                        queue.append((key, job))
                if executor.respawns > MAX_RESPAWNS:
                    raise OrchestrationError(
                        f"{executor.name} backend lost workers "
                        f"{executor.respawns} times; degrading to serial "
                        "execution"
                    )
                self._workers = executor.size
                self._report(running=len(inflight))
        finally:
            executor.close()

    # -- bookkeeping -----------------------------------------------------------
    @staticmethod
    def _label(job: Any) -> str:
        return job.label() if hasattr(job, "label") else str(job)

    @staticmethod
    def _category(job: Any) -> Optional[str]:
        """Workload-category tag for the manifest (None for non-SimJob
        payloads, which keeps the orchestrator job-type agnostic)."""
        return getattr(job, "category", None)

    def _trace_id(self, key: str) -> Optional[str]:
        """The trace a job belongs to: per-key registration wins, a
        telemetry-collected sweep falls back to its run trace."""
        found = self.trace_ids.get(key)
        if found is not None:
            return found
        if self.telemetry is not None:
            return getattr(self.telemetry, "trace_id", None)
        return None

    def _now(self) -> float:
        """Sweep-relative wall time (telemetry origin when available)."""
        if self.telemetry is not None:
            return self.telemetry.now()
        return time.perf_counter()

    def _complete(
        self,
        key: str,
        job: Any,
        result: Any,
        attempts: int,
        results: Dict[str, Any],
    ) -> None:
        results[key] = result
        self._completed += 1
        self.executed_count += 1
        # Single-writer discipline: only the parent stores, so parallel
        # cache entries are byte-identical to serial ones.
        if self.cache is not None:
            self.cache.store(key, result)
        host = getattr(result, "host", None)
        if host:
            self.host_digests.append(host)
        if self.manifest is not None:
            self.manifest.record(
                key,
                STATUS_DONE,
                attempts=attempts,
                label=self._label(job),
                category=self._category(job),
                host=compact_host(host),
                trace_id=self._trace_id(key),
            )
        if self.telemetry is not None:
            end = self.telemetry.now()
            self.telemetry.note_executed(
                key,
                self._label(job),
                STATUS_DONE,
                attempts,
                start=self._started.get(key, end),
                end=end,
                telemetry=getattr(result, "telemetry", None),
                host=host,
            )
        if self.reporter is not None:
            note = getattr(self.reporter, "note_result", None)
            if note is not None:
                note(result)
        if self.on_job_done is not None:
            self.on_job_done(key, STATUS_DONE, result, attempts)
        self._report()

    def _fail(self, key: str, job: Any, error: str, attempts: int) -> None:
        self.failures[key] = error
        trace_id = self._trace_id(key)
        log.error(
            "job_failed",
            key=key,
            label=self._label(job),
            attempts=attempts,
            error=error,
            trace_id=trace_id,
        )
        if self.manifest is not None:
            self.manifest.record(
                key,
                STATUS_FAILED,
                attempts=attempts,
                error=error,
                label=self._label(job),
                category=self._category(job),
                trace_id=trace_id,
            )
        if self.telemetry is not None:
            end = self.telemetry.now()
            self.telemetry.note_executed(
                key,
                self._label(job),
                STATUS_FAILED,
                attempts,
                start=self._started.get(key, end),
                end=end,
                error=error,
            )
        if self.on_job_done is not None:
            self.on_job_done(key, STATUS_FAILED, error, attempts)
        self._report()

    def _report(self, running: int = 0) -> None:
        if self.reporter is not None:
            self.reporter.update(
                completed=self._completed,
                failed=len(self.failures),
                running=running,
                workers=self._workers,
                backend=self._backend,
            )


def compact_host(host: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Lean per-job host digest for the manifest journal (no phases).

    Also the digest the service layer streams on sweep event feeds, so
    the shape is part of the NDJSON contract (see ``repro.service``).
    """
    if not host:
        return None
    keep = (
        "wall_s",
        "job_wall_s",
        "cpu_s",
        "instructions",
        "accesses",
        "instructions_per_s",
        "accesses_per_s",
    )
    return {key: host[key] for key in keep if key in host}
