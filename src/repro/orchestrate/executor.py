"""The executor protocol: one scheduler, pluggable execution backends.

The :class:`~repro.orchestrate.Orchestrator` owns *policy* — dedup,
retry with backoff, cancellation, failure reporting, manifest and
cache writes — and delegates *mechanism* to an :class:`Executor`:
something that accepts ``submit(key, job)``, reports terminal
``(kind, key, payload)`` events from ``poll()``, and answers liveness
questions (how many workers, how many busy, how many died).  Three
backends conform:

* :class:`SerialExecutor` — executes jobs in-process on the calling
  thread; the no-subprocess fallback and the ``jobs=1`` default.
* :class:`LocalPoolExecutor` — the duplex-pipe
  :class:`~repro.orchestrate.pool.WorkerPool`, one process per worker
  with per-job timeout kill and respawn.
* :class:`~repro.orchestrate.bus.BusExecutor` — a filesystem message
  bus where independent ``python -m repro.orchestrate worker``
  processes (this host or any host sharing the directory) claim jobs
  under lease/heartbeat records.

Because every backend speaks the same protocol, the scheduler loop is
written once, and the golden guarantee — cache entries byte-identical
across backends — holds by construction: workers only compute
summaries; cache writes always go through the same
:meth:`ResultCache.store` code path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ExecutorConfigError, OrchestrationError
from .pool import EVENT_ERROR, EVENT_OK, WorkerPool

#: one terminal event: (kind, job key, RunSummary or error message).
#: kinds are the pool's: ``ok``, ``error``, ``crash``, ``timeout``.
ExecutorEvent = Tuple[str, str, Any]


class Executor:
    """Protocol base for execution backends.

    Lifecycle: the scheduler calls :meth:`submit` while
    :attr:`has_idle` is true, drains events with :meth:`poll`, and
    :meth:`close`\\ s the backend when the sweep ends.  ``poll`` must
    return every submitted job exactly once as a terminal event —
    retry is the scheduler's job, so a failed/crashed/timed-out job is
    reported, not silently re-run.
    """

    #: short backend tag for progress lines, metrics labels and logs.
    name: str = "executor"
    #: True when :meth:`poll` executes jobs on the calling thread —
    #: the scheduler then charges poll time to ``execute_job`` rather
    #: than ``pool_wait`` in its phase report.
    inline: bool = False

    # -- work movement ---------------------------------------------------------
    def submit(
        self,
        key: str,
        job: Any,
        trace_id: Optional[str] = None,
        label: Optional[str] = None,
    ) -> None:
        """Hand a job to the backend.  ``trace_id``/``label`` are
        advisory metadata: in-process backends ignore them, the bus
        threads them through its envelopes so remote journal records
        join the request trace."""
        raise NotImplementedError

    def poll(self, wait: float = 0.05) -> List[ExecutorEvent]:
        raise NotImplementedError

    def cancel(self, key: str) -> bool:
        """Withdraw a submitted-but-unstarted job; False if too late."""
        return False

    def close(self) -> None:
        pass

    # -- liveness --------------------------------------------------------------
    @property
    def size(self) -> int:
        """Workers available to this backend (1 for in-process)."""
        return 1

    @property
    def busy_count(self) -> int:
        return 0

    @property
    def idle_count(self) -> int:
        return max(0, self.size - self.busy_count)

    @property
    def has_idle(self) -> bool:
        return self.idle_count > 0

    @property
    def respawns(self) -> int:
        """Unplanned worker deaths (health signal; see MAX_RESPAWNS)."""
        return 0

    @property
    def recycles(self) -> int:
        """Planned worker respawns (``max_jobs_per_worker`` rotation)."""
        return 0

    @property
    def lease_reclaims(self) -> int:
        """Jobs reclaimed from expired leases (bus backends only)."""
        return 0

    def liveness(self) -> Dict[str, Any]:
        """One snapshot of backend health for metrics endpoints."""
        return {
            "backend": self.name,
            "workers": self.size,
            "busy": self.busy_count,
            "respawns": self.respawns,
            "recycles": self.recycles,
            "lease_reclaims": self.lease_reclaims,
        }


class SerialExecutor(Executor):
    """In-process execution on the calling thread.

    Absorbs the orchestrator's historical serial fallback: no
    subprocesses, no per-job timeout (a watchdog needs a second
    process, and serial mode exists precisely for environments where
    spawning one is not an option), and ``BaseException``\\ s that are
    not plain ``Exception`` (``KeyboardInterrupt``) propagate so a
    killed sweep aborts instead of recording a failure.
    """

    name = "serial"
    inline = True

    def __init__(self, execute: Callable[[Any], Any]) -> None:
        self._execute = execute
        self._pending: Optional[Tuple[str, Any]] = None

    def submit(
        self,
        key: str,
        job: Any,
        trace_id: Optional[str] = None,
        label: Optional[str] = None,
    ) -> None:
        if self._pending is not None:
            raise OrchestrationError("submit() called with no idle worker")
        self._pending = (key, job)

    def poll(self, wait: float = 0.05) -> List[ExecutorEvent]:
        if self._pending is None:
            return []
        key, job = self._pending
        self._pending = None
        try:
            payload = self._execute(job)
        except Exception as exc:  # noqa: BLE001 — reported for retry
            return [(EVENT_ERROR, key, f"{type(exc).__name__}: {exc}")]
        return [(EVENT_OK, key, payload)]

    def cancel(self, key: str) -> bool:
        if self._pending is not None and self._pending[0] == key:
            self._pending = None
            return True
        return False

    @property
    def busy_count(self) -> int:
        return 1 if self._pending is not None else 0


class LocalPoolExecutor(Executor):
    """The single-host worker pool behind the executor protocol.

    A thin adapter: :class:`~repro.orchestrate.pool.WorkerPool`
    already speaks submit/poll/liveness; this class only maps its
    construction knobs and counters onto the protocol.
    """

    name = "pool"

    def __init__(
        self,
        workers: int,
        execute: Callable[[Any], Any],
        timeout: Optional[float] = None,
        context=None,
        max_jobs_per_worker: Optional[int] = None,
        pool_factory: Callable[..., WorkerPool] = WorkerPool,
    ) -> None:
        self._pool = pool_factory(
            workers,
            execute,
            timeout=timeout,
            context=context,
            max_jobs_per_worker=max_jobs_per_worker,
        )

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    def submit(
        self,
        key: str,
        job: Any,
        trace_id: Optional[str] = None,
        label: Optional[str] = None,
    ) -> None:
        self._pool.submit(key, job)

    def poll(self, wait: float = 0.05) -> List[ExecutorEvent]:
        return self._pool.poll(wait)

    def close(self) -> None:
        self._pool.close()

    @property
    def size(self) -> int:
        return self._pool.size

    @property
    def busy_count(self) -> int:
        return self._pool.busy_count

    @property
    def respawns(self) -> int:
        return self._pool.respawns

    @property
    def recycles(self) -> int:
        return self._pool.recycles


#: accepted ``--executor`` / ``REPRO_EXECUTOR`` spellings.
EXECUTOR_KINDS = ("serial", "pool", "bus")


def resolve_executor(
    spec,
    jobs: int,
    execute: Callable[[Any], Any],
    timeout: Optional[float] = None,
    context=None,
    bus_dir: Optional[str] = None,
    bus_spawn: Optional[int] = None,
    max_jobs_per_worker: Optional[int] = None,
    cache_dir: Optional[str] = None,
    lease_timeout: Optional[float] = None,
    pool_factory: Callable[..., WorkerPool] = WorkerPool,
) -> Executor:
    """Build an executor from a spec: an instance, a kind name or None.

    ``None`` keeps the historical behaviour — serial for ``jobs <= 1``,
    the local pool otherwise.  A string names a backend explicitly;
    ``"bus"`` needs ``bus_dir`` and spawns ``bus_spawn`` local worker
    processes (default ``jobs``; 0 relies on externally started
    workers).  An :class:`Executor` instance is returned as-is, so
    tests and services can inject pre-built backends.

    Misconfiguration — an unknown kind, ``"bus"`` without a directory
    — raises :class:`~repro.errors.ExecutorConfigError`; callers must
    surface it, not degrade, so a typo cannot silently turn a
    distributed sweep into a serial one.
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        spec = "serial" if jobs <= 1 else "pool"
    if spec == "serial":
        return SerialExecutor(execute)
    if spec == "pool":
        return LocalPoolExecutor(
            max(1, jobs),
            execute,
            timeout=timeout,
            context=context,
            max_jobs_per_worker=max_jobs_per_worker,
            pool_factory=pool_factory,
        )
    if spec == "bus":
        if not bus_dir:
            raise ExecutorConfigError(
                "the bus executor needs a bus directory "
                "(--bus-dir / REPRO_BUS_DIR)"
            )
        from .bus import BusExecutor

        kwargs: Dict[str, Any] = {}
        if lease_timeout is not None:
            kwargs["lease_timeout"] = lease_timeout
        return BusExecutor(
            bus_dir,
            execute=execute,
            spawn_workers=jobs if bus_spawn is None else bus_spawn,
            timeout=timeout,
            max_jobs_per_worker=max_jobs_per_worker,
            cache_dir=cache_dir,
            **kwargs,
        )
    raise ExecutorConfigError(
        f"unknown executor {spec!r}; expected one of {EXECUTOR_KINDS}"
    )


__all__ = [
    "EVENT_ERROR",
    "EVENT_OK",
    "EXECUTOR_KINDS",
    "Executor",
    "ExecutorEvent",
    "LocalPoolExecutor",
    "SerialExecutor",
    "resolve_executor",
]
