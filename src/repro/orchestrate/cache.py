"""Result memo shared by the serial runner and the orchestrator.

One :class:`ResultCache` fronts both an in-process dict and the
``.repro-cache`` disk directory.  All writes funnel through
:meth:`ResultCache.store` in the *parent* process — workers only ever
return summaries over a pipe — so parallel sweeps produce cache files
byte-identical to serial ones and there is never a concurrent writer
per entry.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from .job import RunSummary


class ResultCache:
    """Two-level (memory, disk) memo of :class:`RunSummary` by job key."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self._memory: Dict[str, RunSummary] = {}
        self._disk: Optional[Path] = None
        if cache_dir:
            self._disk = Path(cache_dir)
            self._disk.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Optional[Path]:
        """The disk directory, or ``None`` for a memory-only cache."""
        return self._disk

    def path_for(self, key: str) -> Optional[Path]:
        return self._disk / f"{key}.json" if self._disk is not None else None

    def load(self, key: str) -> Optional[RunSummary]:
        if key in self._memory:
            return self._memory[key]
        path = self.path_for(key)
        if path is None or not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            summary = RunSummary(**data)
        except (ValueError, TypeError):
            return None  # stale/corrupt cache entry; recompute
        self._memory[key] = summary
        return summary

    def store(self, key: str, summary: RunSummary) -> None:
        self._memory[key] = summary
        path = self.path_for(key)
        if path is not None:
            data = asdict(summary)
            # The host digest is per-execution provenance (wall times
            # differ run to run), so it is stripped unconditionally:
            # cache files depend only on simulated output, keeping
            # serial and parallel sweeps byte-identical.
            data.pop("host", None)
            # Optional telemetry fields are omitted when unset so the
            # cache files of untraced runs stay byte-identical to
            # pre-telemetry entries (pinned by the golden tests).
            for optional in ("intervals", "telemetry"):
                if data.get(optional) is None:
                    data.pop(optional, None)
            # Atomic publish: write the entry to a sibling temp file and
            # os.replace() it into place.  A process killed mid-write can
            # only ever leave a stray ``*.tmp`` behind — never a truncated
            # ``<key>.json`` that would poison later readers (the service
            # serves this directory to concurrent clients, so a corrupt
            # entry would be replayed, not recomputed, forever).
            # The temp name carries the pid so two *processes* sharing a
            # cache directory (a CLI sweep next to a running service)
            # never interleave bytes in one temp file; last replace wins
            # with an identical payload either way (content-hash key).
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(data))
            os.replace(tmp, path)
