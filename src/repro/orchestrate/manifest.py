"""Crash-safe resume manifest for interrupted sweeps.

The orchestrator journals every job outcome as one JSON line appended
(and flushed) to a manifest file.  Because lines are only appended, a
sweep killed mid-write loses at most its final, partial line — which
:meth:`SweepManifest.statuses` skips — so a restarted sweep can always
read a consistent record of what finished.  Completed jobs are also in
the result cache (the primary dedup), which makes the manifest the
source of truth for *failures*: which jobs exhausted their retries,
with what error, after how many attempts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Set, Union

#: terminal job states recorded in the journal.
STATUS_DONE = "done"
STATUS_FAILED = "failed"
#: drained from the queue before execution (never ran, nothing cached).
STATUS_CANCELLED = "cancelled"
#: informational (non-terminal) states journalled by the bus backend:
#: a worker took a lease on the job / the parent reclaimed an expired
#: lease.  ``done_keys()``/``failed()`` ignore them by construction —
#: a claimed job that never reports back is simply retried on resume.
STATUS_CLAIMED = "claimed"
STATUS_RECLAIMED = "reclaimed"

#: opt-in environment switch: fsync every appended record so a host
#: that loses power (not just the process) cannot tear the journal.
MANIFEST_FSYNC_ENV = "REPRO_MANIFEST_FSYNC"


def _fsync_from_env() -> bool:
    # repro: allow[DX3] — durability knob; never part of job identity
    return os.environ.get(MANIFEST_FSYNC_ENV, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


@dataclass(frozen=True)
class ManifestRecord:
    """The latest journalled outcome of one job."""

    key: str
    status: str
    attempts: int = 1
    error: Optional[str] = None
    label: Optional[str] = None
    #: workload-category tag of the job's mix (``"CCF+LLCT"``-style,
    #: see :func:`repro.workloads.mix_category`); lets evaluation
    #: tooling slice by category without re-deriving it from workload
    #: names.  None for journals written before categories existed.
    category: Optional[str] = None
    #: compact host-throughput digest for executed jobs (wall seconds,
    #: simulated instructions/s, accesses/s); None for cached/failed
    #: jobs or journals written before host metrics existed.
    host: Optional[Dict] = None
    #: request trace this outcome belongs to (repro.obs); None for
    #: journals written before tracing existed or untraced runs.
    trace_id: Optional[str] = None
    #: bus worker id that claimed/executed the job; None for in-process
    #: backends and journals written before distributed sweeps existed.
    worker: Optional[str] = None


class SweepManifest:
    """Append-only JSONL journal of per-job outcomes for one cache dir.

    One journal file, one writing process: crash-tolerance relies on
    O_APPEND single-write atomicity, which shared filesystems (NFS) do
    not guarantee across hosts — which is why the bus gives every
    worker its own journal file instead of sharing this one.
    """

    def __init__(self, path: Union[str, Path], fsync: Optional[bool] = None) -> None:
        self.path = Path(path)
        #: None defers to REPRO_MANIFEST_FSYNC at each append, so a
        #: long-lived service honours operator changes without restart.
        self.fsync = fsync

    def record(
        self,
        key: str,
        status: str,
        attempts: int = 1,
        error: Optional[str] = None,
        label: Optional[str] = None,
        category: Optional[str] = None,
        host: Optional[Dict] = None,
        trace_id: Optional[str] = None,
        worker: Optional[str] = None,
        fsync: Optional[bool] = None,
    ) -> None:
        """Append one outcome line; flushed so a later crash keeps it.

        ``fsync=True`` forces the record through to disk (lease records
        must survive host power loss, not just process death); the
        default inherits the manifest-level / environment setting.
        """
        entry = {"key": key, "status": status, "attempts": attempts}
        if error is not None:
            entry["error"] = error
        if label is not None:
            entry["label"] = label
        if category is not None:
            entry["category"] = category
        if host is not None:
            entry["host"] = host
        if trace_id is not None:
            entry["trace_id"] = trace_id
        if worker is not None:
            entry["worker"] = worker
        if fsync is None:
            fsync = self.fsync if self.fsync is not None else _fsync_from_env()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # A sweep killed mid-append leaves a line without its newline;
        # terminate it first so the partial line poisons nothing else.
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as tail:
                tail.seek(-1, 2)
                needs_newline = tail.read(1) != b"\n"
        data = json.dumps(entry, sort_keys=True) + "\n"
        if needs_newline:
            data = "\n" + data
        # One O_APPEND write.  POSIX append atomicity holds for writes
        # this small on local filesystems but NOT on NFS, so every
        # journal file has exactly one writing process: the
        # orchestrator/broker owns the sweep manifest, the bus parent
        # owns journal.jsonl, and each bus worker appends claims to
        # its own journal.<worker_id>.jsonl (merged on read via
        # FileBus.journal_paths).  The single write still matters —
        # it keeps a same-process signal arriving mid-append from
        # tearing a record.
        fd = os.open(
            str(self.path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, data.encode("utf-8"))
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)

    def statuses(self) -> Dict[str, ManifestRecord]:
        """Latest record per job key; tolerates a truncated final line."""
        records: Dict[str, ManifestRecord] = {}
        if not self.path.exists():
            return records
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # partial line from a crash mid-append
            if not isinstance(entry, dict) or "key" not in entry:
                continue
            records[entry["key"]] = ManifestRecord(
                key=entry["key"],
                status=entry.get("status", ""),
                attempts=entry.get("attempts", 1),
                error=entry.get("error"),
                label=entry.get("label"),
                category=entry.get("category"),
                host=entry.get("host"),
                trace_id=entry.get("trace_id"),
                worker=entry.get("worker"),
            )
        return records

    def done_keys(self) -> Set[str]:
        return {
            key
            for key, record in self.statuses().items()
            if record.status == STATUS_DONE
        }

    def failed(self) -> Dict[str, ManifestRecord]:
        return {
            key: record
            for key, record in self.statuses().items()
            if record.status == STATUS_FAILED
        }
