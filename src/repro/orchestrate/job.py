"""Simulation jobs: the unit of work the orchestrator schedules.

A :class:`SimJob` is a fully-resolved, picklable description of one
(mix x hierarchy-variant) simulation — every default already applied,
so executing it needs no settings object, no environment and no shared
state.  :func:`job_key` derives the job's identity as a content hash;
it is *the* disk-memo key of :class:`repro.experiments.Runner`, which
is what lets the orchestrator deduplicate a sweep against the existing
``.repro-cache`` and lets a killed sweep resume from whatever jobs
already finished.

:func:`execute_job` is a module-level function (picklable under every
``multiprocessing`` start method) that runs the simulation and returns
a :class:`RunSummary`; the same function serves the serial fallback
and the worker processes, so parallel runs are byte-for-byte identical
to serial ones.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..config import TLAConfig, baseline_hierarchy, variant_sim_config
from ..cpu import CMPSimulator
from ..perf.phase import PHASE_EXECUTE_JOB, PhaseTimer
from ..telemetry import TelemetryConfig, write_events_jsonl
from ..version import __version__
from ..workloads import WorkloadMix, mix_category

#: Bump when simulator behaviour changes to invalidate stale caches.
CACHE_SCHEMA = 6


@dataclass
class RunSummary:
    """The slice of a :class:`repro.cpu.SimResult` experiments consume."""

    mix: str
    apps: List[str]
    mode: str
    tla: str
    ipcs: List[float]
    llc_misses: int
    llc_accesses: int
    inclusion_victims: int
    traffic: Dict[str, int]
    max_cycles: float
    instructions: List[int]
    mpki: List[Dict[str, float]]
    #: serialised :class:`~repro.telemetry.IntervalSeries` (telemetry
    #: runs only; ``None`` keeps untraced cache entries byte-identical).
    intervals: Optional[Dict] = None
    #: compact tracer/runtime digest (telemetry runs only).
    telemetry: Optional[Dict] = None
    #: host-performance digest for the execution that produced this
    #: summary (wall seconds, simulated instructions/s, optional phase
    #: report).  Per-execution provenance, NOT simulated output: the
    #: result cache strips it before writing, so cache replays carry
    #: ``host=None`` and serial/parallel entries stay byte-identical.
    host: Optional[Dict] = None

    @property
    def throughput(self) -> float:
        return sum(self.ipcs)

    def interval_series(self):
        """Materialise the interval time series, or None."""
        if self.intervals is None:
            return None
        from ..telemetry import IntervalSeries

        return IntervalSeries.from_dict(self.intervals)


@dataclass(frozen=True)
class SimJob:
    """One schedulable simulation, with every knob resolved.

    ``quota``/``warmup``/``scale`` carry concrete values (no
    settings-dependent defaults) and ``tla_config`` is the resolved
    :class:`~repro.config.TLAConfig`, so two jobs are interchangeable
    exactly when their :func:`job_key` matches.
    """

    mix_name: str
    apps: Tuple[str, ...]
    mode: str = "inclusive"
    tla: str = "none"
    tla_config: TLAConfig = TLAConfig()
    llc_bytes: Optional[int] = None
    scale: float = 1.0
    quota: int = 100_000
    warmup: int = 0
    victim_cache_entries: int = 0
    #: telemetry knobs.  ``intervals`` is the collector window in
    #: cycles (0 = off); ``trace`` turns on event recording.  All
    #: default off so pre-telemetry job keys are unchanged.
    intervals: int = 0
    trace: bool = False
    trace_out: Optional[str] = None
    trace_sample: int = 1
    trace_categories: Tuple[str, ...] = ()
    #: attach a host :class:`~repro.perf.PhaseTimer` to the simulation
    #: (phase report lands in ``RunSummary.host``).  Pure host-side
    #: observability — like ``trace_out`` it never joins the job key,
    #: because it cannot change simulated output.
    host_phases: bool = False

    @property
    def num_cores(self) -> int:
        return len(self.apps)

    def label(self) -> str:
        """Short human-readable identity for progress lines and logs."""
        return f"{self.mix_name}/{self.mode}/{self.tla}"

    @property
    def category(self) -> str:
        """Workload-category tag (``"CCF+LLCT"``-style, core-order
        free); journalled next to the job by the sweep manifest so
        :mod:`repro.eval` slices need no workload-name parsing."""
        return mix_category(self.apps)


def job_key(job: SimJob) -> str:
    """Content hash identifying a job == the runner's disk-memo key.

    The payload is serialised with ``sort_keys=True`` and contains only
    JSON scalars/containers, so the key is independent of dict insertion
    order, ``PYTHONHASHSEED`` and the computing process — a hard
    requirement for cross-process deduplication (asserted by
    ``tests/experiments/test_cache_key.py``).
    """
    fields = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        # keyed by app composition, not mix name, so a Table II
        # mix and the identical PAIR_* mix share one simulation
        "apps": job.apps,
        "mode": job.mode,
        "tla": job.tla,
        "tla_cfg": asdict(job.tla_config),
        "llc_bytes": job.llc_bytes,
        "scale": job.scale,
        "quota": job.quota,
        "warmup": job.warmup,
        "vc": job.victim_cache_entries,
    }
    # Telemetry knobs join the identity only when set, so untraced jobs
    # hash exactly as they did before telemetry existed (cache entries
    # and resumability survive).  ``trace_out`` is an output location,
    # not an identity: it never affects the key.
    if job.intervals:
        fields["intervals"] = job.intervals
    if job.trace:
        fields["trace"] = {
            "sample": job.trace_sample,
            "categories": sorted(job.trace_categories),
        }
    payload = json.dumps(fields, sort_keys=True, default=list)
    return hashlib.sha1(payload.encode()).hexdigest()


def execute_job(job: SimJob) -> RunSummary:
    """Run one job's simulation from scratch and summarise it.

    Deterministic: traces are seeded from the app/core identity, the
    machine is rebuilt from the job description, and nothing is read
    from the environment — the contract that makes worker-pool results
    interchangeable with serial ones.
    """
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    timer: Optional[PhaseTimer] = PhaseTimer() if job.host_phases else None
    if timer is not None:
        # Everything outside the simulator proper (trace construction,
        # config resolution, summarising) is charged to execute_job;
        # the simulator's own phases nest inside.
        timer.enter(PHASE_EXECUTE_JOB)
    telemetry: Optional[TelemetryConfig] = None
    if job.trace or job.intervals:
        telemetry = TelemetryConfig(
            enabled=job.trace,
            out_dir=job.trace_out or "traces",
            sample=job.trace_sample,
            interval=job.intervals,
            categories=job.trace_categories,
        )
    mix = WorkloadMix(job.mix_name, job.apps)
    # Workload generators always size against the scaled 2-core
    # baseline, regardless of the simulated variant (Table I's
    # categories are baseline-relative).
    reference = baseline_hierarchy(2, scale=job.scale)
    config = variant_sim_config(
        num_cores=mix.num_cores,
        mode=job.mode,
        tla=job.tla_config,
        llc_bytes=job.llc_bytes,
        scale=job.scale,
        quota=job.quota,
        warmup=job.warmup,
        victim_cache_entries=job.victim_cache_entries,
    )
    simulator = CMPSimulator(
        config, mix.traces(reference), telemetry=telemetry, phase_timer=timer
    )
    result = simulator.run()
    summary = RunSummary(
        mix=mix.name,
        apps=list(mix.apps),
        mode=job.mode,
        tla=job.tla,
        ipcs=result.ipcs,
        llc_misses=result.total_llc_misses,
        llc_accesses=result.total_llc_accesses,
        inclusion_victims=result.total_inclusion_victims,
        traffic=dict(result.traffic),
        max_cycles=result.max_cycles,
        instructions=[core.instructions for core in result.cores],
        mpki=[
            {
                "l1": core.mpki("l1"),
                "l1i": core.mpki("l1i"),
                "l1d": core.mpki("l1d"),
                "l2": core.mpki("l2"),
                "llc": core.mpki("llc"),
            }
            for core in result.cores
        ],
    )
    if result.intervals is not None:
        summary.intervals = result.intervals.to_dict()
    if telemetry is not None:
        digest: Dict = {
            "cpu_s": time.process_time() - cpu_start,
            "max_cycles": result.max_cycles,
            "core_phases": [
                {
                    "core": core.core_id,
                    "warmup_cycles": core.cycles_at_warmup,
                    "quota_cycles": core.cycles_at_quota or core.cycles,
                }
                for core in simulator.cores
            ],
        }
        tracer = simulator.tracer
        if tracer is not None:
            digest.update(tracer.summary())
            if job.trace_out:
                # Each worker writes its own job-key-named file, so
                # parallel sweeps never contend on one event log.
                path = write_events_jsonl(
                    Path(job.trace_out) / f"events-{job_key(job)}.jsonl",
                    tracer.events,
                )
                digest["events_path"] = str(path)
        summary.telemetry = digest
    host: Dict = dict(result.host or {})
    host["job_wall_s"] = time.perf_counter() - wall_start
    host["cpu_s"] = time.process_time() - cpu_start
    if timer is not None:
        timer.exit()
        # Re-report phases at job granularity: includes the
        # execute_job envelope around the simulator's own phases.
        host["phases"] = timer.report()
    summary.host = host
    return summary
