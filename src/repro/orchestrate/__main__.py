"""CLI for distributed sweep infrastructure.

``python -m repro.orchestrate worker --bus <dir>`` runs one bus worker
against a spool directory — start as many as you like, on as many
hosts as share the directory; each claims jobs under a lease and
publishes results (see :mod:`repro.orchestrate.bus`).

``python -m repro.orchestrate check-manifest <file>`` schema-validates
a sweep manifest or bus journal, the crash-safety artefacts CI guards.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .bus import DEFAULT_HEARTBEAT, BusWorker


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrate",
        description="distributed sweep workers and journal tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser(
        "worker", help="run one bus worker against a spool directory"
    )
    worker.add_argument(
        "--bus", required=True, help="bus spool directory (shared filesystem)"
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit 0 after executing this many jobs (worker recycling)",
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="exit 0 after this many seconds with nothing to claim",
    )
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=DEFAULT_HEARTBEAT,
        help="lease/registration heartbeat period in seconds",
    )

    check = sub.add_parser(
        "check-manifest",
        help="schema-validate a sweep manifest or bus journal (JSONL)",
    )
    check.add_argument("path", help="manifest/journal file to validate")
    return parser


def _run_worker(args: argparse.Namespace) -> int:
    worker = BusWorker(
        args.bus,
        worker_id=args.worker_id,
        max_jobs=args.max_jobs,
        idle_exit=args.idle_exit,
        heartbeat=args.heartbeat,
    )
    try:
        return worker.run()
    except KeyboardInterrupt:
        return 0


def _run_check(args: argparse.Namespace) -> int:
    from ..telemetry.schema import validate_sweep_manifest

    path = Path(args.path)
    if not path.is_file():
        print(f"check-manifest: no such file: {path}", file=sys.stderr)
        return 2
    errors = validate_sweep_manifest(path)
    for error in errors:
        print(f"{path}: {error}", file=sys.stderr)
    if errors:
        print(f"{path}: INVALID ({len(errors)} error(s))", file=sys.stderr)
        return 1
    print(f"{path}: ok")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "worker":
        return _run_worker(args)
    return _run_check(args)


if __name__ == "__main__":
    sys.exit(main())
