"""Multiprocessing worker pool with per-job timeout and respawn.

Deliberately lower-level than ``multiprocessing.Pool``: each worker is
one process with its own duplex pipe, so the parent always knows *which*
job a worker is running.  That is what makes per-job timeouts
enforceable — a stuck worker is terminated and replaced, and only its
job is charged with the failure — and lets a worker that dies outright
(OOM kill, segfault) surface as a retryable ``crash`` event instead of
hanging the sweep.

The pool never touches the result cache or the manifest; it only moves
jobs out and ``(key, kind, payload)`` events back.  Policy (retry,
backoff, dedup, resume) lives in :class:`repro.orchestrate.Orchestrator`.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing import connection
from typing import Any, Callable, List, Optional, Tuple

from ..errors import ExecutorConfigError, OrchestrationError

#: event kinds produced by :meth:`WorkerPool.poll`.
EVENT_OK = "ok"
EVENT_ERROR = "error"
EVENT_CRASH = "crash"
EVENT_TIMEOUT = "timeout"

#: one pool event: (kind, job key, RunSummary or error message).
PoolEvent = Tuple[str, str, Any]


def _worker_main(conn, execute: Callable[[Any], Any]) -> None:
    """Worker loop: receive ``(key, job)``, send ``(key, kind, payload)``.

    Module-level so it stays picklable under every multiprocessing
    start method (fork, spawn, forkserver).
    """
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if item is None:
            return
        key, job = item
        try:
            payload = (key, EVENT_OK, execute(job))
        except BaseException as exc:  # noqa: BLE001 — must report, not die
            payload = (key, EVENT_ERROR, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One worker process plus the parent's view of what it is doing."""

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.key: Optional[str] = None  # job key in flight, None if idle
        self.started: float = 0.0  # perf_counter at submit
        self.jobs_done: int = 0  # completed jobs, drives recycling

    @property
    def busy(self) -> bool:
        return self.key is not None

    def shutdown(self, grace: float = 0.2) -> None:
        """Ask the worker to exit; escalate to terminate after ``grace``."""
        try:
            if not self.busy:
                self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(grace)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
        self.conn.close()


class WorkerPool:
    """A fixed-size pool of job-executing processes."""

    def __init__(
        self,
        num_workers: int,
        execute: Callable[[Any], Any],
        timeout: Optional[float] = None,
        context=None,
        max_jobs_per_worker: Optional[int] = None,
    ) -> None:
        if num_workers <= 0:
            raise ExecutorConfigError("worker pool needs at least one worker")
        if max_jobs_per_worker is not None and max_jobs_per_worker < 1:
            raise ExecutorConfigError("max_jobs_per_worker must be >= 1")
        self._execute = execute
        self._timeout = timeout
        self._max_jobs = max_jobs_per_worker
        self._ctx = context if context is not None else multiprocessing.get_context()
        self.respawns = 0
        self.recycles = 0
        self._workers: List[_Worker] = []
        try:
            for _ in range(num_workers):
                self._workers.append(self._spawn())
        except OrchestrationError:
            self.close()
            raise

    # -- lifecycle -------------------------------------------------------------
    def _spawn(self) -> _Worker:
        try:
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main, args=(child_conn, self._execute), daemon=True
            )
            process.start()
        except (OSError, ValueError) as exc:
            raise OrchestrationError(
                f"cannot start worker process: {exc}"
            ) from exc
        child_conn.close()
        return _Worker(process, parent_conn)

    def _replace(self, worker: _Worker) -> None:
        """Kill a (stuck or dead) worker and respawn into its slot."""
        worker.key = None
        worker.process.terminate()
        worker.process.join(1.0)
        try:
            worker.conn.close()
        except OSError:
            pass
        self.respawns += 1
        self._workers[self._workers.index(worker)] = self._spawn()

    def _recycle(self, worker: _Worker) -> None:
        """Retire a healthy worker that hit ``max_jobs_per_worker``.

        Unlike :meth:`_replace` this is a planned rotation (memory-drift
        bound on long sweeps), so it asks the idle worker to exit and
        counts under ``recycles``, not the ``respawns`` health signal.
        """
        worker.shutdown()
        self.recycles += 1
        self._workers[self._workers.index(worker)] = self._spawn()

    def close(self) -> None:
        for worker in self._workers:
            worker.shutdown()
        self._workers = []

    # -- scheduling ------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._workers)

    @property
    def busy_count(self) -> int:
        return sum(1 for worker in self._workers if worker.busy)

    @property
    def idle_count(self) -> int:
        """Workers ready for :meth:`submit` right now.

        The service broker dispatches exactly this many jobs per
        scheduling round, so one admission queue multiplexes every
        client's sweep over the single shared pool.
        """
        return sum(1 for worker in self._workers if not worker.busy)

    @property
    def has_idle(self) -> bool:
        return any(not worker.busy for worker in self._workers)

    def submit(self, key: str, job: Any) -> None:
        for worker in self._workers:
            if not worker.busy:
                try:
                    worker.conn.send((key, job))
                except (BrokenPipeError, OSError):
                    self._replace(worker)
                    continue
                worker.key = key
                worker.started = time.perf_counter()
                return
        raise OrchestrationError("submit() called with no idle worker")

    def poll(self, wait: float = 0.05) -> List[PoolEvent]:
        """Collect finished/failed/crashed/timed-out jobs.

        Blocks up to ``wait`` seconds for the first event.  A worker
        whose pipe hits EOF died mid-job (crash event, retryable); a
        worker past the per-job timeout is terminated and respawned.
        """
        events: List[PoolEvent] = []
        busy = [worker for worker in self._workers if worker.busy]
        if busy:
            ready = connection.wait([worker.conn for worker in busy], wait)
            for worker in busy:
                if worker.conn not in ready:
                    continue
                try:
                    key, kind, payload = worker.conn.recv()
                except (EOFError, OSError):
                    events.append(
                        (EVENT_CRASH, worker.key, "worker process died")
                    )
                    self._replace(worker)
                    continue
                worker.key = None
                worker.jobs_done += 1
                events.append((kind, key, payload))
                if self._max_jobs is not None and worker.jobs_done >= self._max_jobs:
                    self._recycle(worker)
        if self._timeout is not None:
            now = time.perf_counter()
            for worker in list(self._workers):
                if worker.busy and now - worker.started > self._timeout:
                    events.append(
                        (
                            EVENT_TIMEOUT,
                            worker.key,
                            f"job exceeded the {self._timeout:g}s timeout",
                        )
                    )
                    self._replace(worker)
        return events
