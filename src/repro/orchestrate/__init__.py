"""Parallel, fault-tolerant experiment orchestration.

The paper sweep is a grid of independent simulations — 105 two-core
mixes x 7+ hierarchy variants, plus ratio and core-count studies —
and every one of them is deterministic and identified by a content
hash.  This package turns that grid into a job graph and executes it
as fast as the machine allows:

* :mod:`~repro.orchestrate.job` — :class:`SimJob` (one fully-resolved
  simulation), :func:`job_key` (the content hash, identical to the
  runner's disk-memo key) and :func:`execute_job` (pure executor,
  picklable for worker dispatch).
* :mod:`~repro.orchestrate.cache` — :class:`ResultCache`, the shared
  memory+disk memo; jobs already cached are never re-executed, which
  doubles as crash resume.
* :mod:`~repro.orchestrate.manifest` — :class:`SweepManifest`, an
  append-only JSONL journal of per-job outcomes that survives kills
  mid-write.
* :mod:`~repro.orchestrate.pool` — :class:`WorkerPool`, one process
  per worker with per-job timeout, kill and respawn.
* :mod:`~repro.orchestrate.scheduler` — :class:`Orchestrator`, the
  policy layer: dedup, bounded retry with exponential backoff,
  graceful degradation to serial execution, failure reporting.

Figure drivers never use this directly; they call
:meth:`repro.experiments.Runner.run_many`, which builds the jobs and
hands them here.  ``REPRO_JOBS`` / ``--jobs`` select the worker count
(1 = serial, no subprocesses at all).
"""

from .cache import ResultCache
from .job import CACHE_SCHEMA, RunSummary, SimJob, execute_job, job_key
from .manifest import (
    STATUS_CANCELLED,
    STATUS_DONE,
    STATUS_FAILED,
    ManifestRecord,
    SweepManifest,
)
from .pool import WorkerPool
from .scheduler import Orchestrator, compact_host

__all__ = [
    "CACHE_SCHEMA",
    "ManifestRecord",
    "Orchestrator",
    "ResultCache",
    "RunSummary",
    "STATUS_CANCELLED",
    "STATUS_DONE",
    "STATUS_FAILED",
    "SimJob",
    "SweepManifest",
    "WorkerPool",
    "compact_host",
    "execute_job",
    "job_key",
]
