"""Parallel, fault-tolerant experiment orchestration.

The paper sweep is a grid of independent simulations — 105 two-core
mixes x 7+ hierarchy variants, plus ratio and core-count studies —
and every one of them is deterministic and identified by a content
hash.  This package turns that grid into a job graph and executes it
as fast as the machine allows:

* :mod:`~repro.orchestrate.job` — :class:`SimJob` (one fully-resolved
  simulation), :func:`job_key` (the content hash, identical to the
  runner's disk-memo key) and :func:`execute_job` (pure executor,
  picklable for worker dispatch).
* :mod:`~repro.orchestrate.cache` — :class:`ResultCache`, the shared
  memory+disk memo; jobs already cached are never re-executed, which
  doubles as crash resume.
* :mod:`~repro.orchestrate.manifest` — :class:`SweepManifest`, an
  append-only JSONL journal of per-job outcomes that survives kills
  mid-write.
* :mod:`~repro.orchestrate.executor` — the :class:`Executor`
  protocol (submit/poll/cancel/liveness) and the in-process backends:
  :class:`SerialExecutor` and :class:`LocalPoolExecutor`.
* :mod:`~repro.orchestrate.pool` — :class:`WorkerPool`, one process
  per worker with per-job timeout, kill, respawn and
  ``max_jobs_per_worker`` recycling.
* :mod:`~repro.orchestrate.bus` — :class:`BusExecutor` and
  :class:`BusWorker`, a filesystem message bus for distributed sweeps
  with lease/heartbeat crash recovery.
* :mod:`~repro.orchestrate.scheduler` — :class:`Orchestrator`, the
  policy layer: dedup, bounded retry with exponential backoff,
  graceful degradation to serial execution, failure reporting.

Figure drivers never use this directly; they call
:meth:`repro.experiments.Runner.run_many`, which builds the jobs and
hands them here.  ``REPRO_JOBS`` / ``--jobs`` select the worker count
(1 = serial, no subprocesses at all).
"""

from .bus import BusExecutor, BusWorker, FileBus
from .cache import ResultCache
from .executor import (
    EXECUTOR_KINDS,
    Executor,
    LocalPoolExecutor,
    SerialExecutor,
    resolve_executor,
)
from .job import CACHE_SCHEMA, RunSummary, SimJob, execute_job, job_key
from .manifest import (
    STATUS_CANCELLED,
    STATUS_CLAIMED,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_RECLAIMED,
    ManifestRecord,
    SweepManifest,
)
from .pool import WorkerPool
from .scheduler import Orchestrator, compact_host

__all__ = [
    "BusExecutor",
    "BusWorker",
    "CACHE_SCHEMA",
    "EXECUTOR_KINDS",
    "Executor",
    "FileBus",
    "LocalPoolExecutor",
    "ManifestRecord",
    "Orchestrator",
    "ResultCache",
    "RunSummary",
    "STATUS_CANCELLED",
    "STATUS_CLAIMED",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_RECLAIMED",
    "SerialExecutor",
    "SimJob",
    "SweepManifest",
    "WorkerPool",
    "compact_host",
    "execute_job",
    "job_key",
    "resolve_executor",
]
