"""CacheSan: runtime invariant sanitizers for cache hierarchies.

Attach a :class:`HierarchySanitizer` to any hierarchy (via
``build_hierarchy(..., sanitize=...)``, a
:class:`~repro.config.SanitizeConfig`, or ``REPRO_SANITIZE=1``) and it
audits the full tag/directory/counter state every ``interval``
accesses, raising :class:`~repro.errors.SanitizerError` with exact
set/way/line-address coordinates on the first corruption it finds.
"""

from .base import (
    ENV_VAR,
    HierarchySanitizer,
    InvariantChecker,
    Violation,
    coerce_sanitizer,
    env_override,
    sanitizer_from_config,
)
from .checkers import (
    CHECKERS,
    DirectoryConsistencyChecker,
    DuplicateLineChecker,
    ExclusionChecker,
    InclusionChecker,
    MSHRLeakChecker,
    ReplacementMetadataChecker,
    StatsConservationChecker,
    default_checkers,
)

__all__ = [
    "ENV_VAR",
    "HierarchySanitizer",
    "InvariantChecker",
    "Violation",
    "coerce_sanitizer",
    "env_override",
    "sanitizer_from_config",
    "CHECKERS",
    "default_checkers",
    "InclusionChecker",
    "ExclusionChecker",
    "DuplicateLineChecker",
    "ReplacementMetadataChecker",
    "MSHRLeakChecker",
    "DirectoryConsistencyChecker",
    "StatsConservationChecker",
]
