"""CacheSan — the invariant-sanitizer framework.

The paper's argument rests on structural invariants: inclusion (every
core-cache line resident in the LLC), its deliberate violations under
ECI/QBS, and exact back-invalidate accounting.  A TLA policy or a
future refactor that mutates cache state through the staged API
(``evict_way`` / ``fill_way`` / ``promote_way``) can silently corrupt
those invariants without failing any functional test — the counters
just come out wrong.  CacheSan makes the invariants mechanical:

* an :class:`InvariantChecker` inspects one structural property of a
  hierarchy and returns :class:`Violation` records with exact
  set/way/line-address coordinates;
* a :class:`HierarchySanitizer` owns a set of checkers and runs every
  applicable one over the hierarchy's full state every ``interval``
  accesses (the audit hook in
  :meth:`repro.hierarchy.base.BaseHierarchy.access` drives it);
* ``fail_fast=True`` raises :class:`~repro.errors.SanitizerError` on
  the first violating scan, ``fail_fast=False`` collects violations
  for a post-run :meth:`HierarchySanitizer.report`.

Enable it per hierarchy through
:class:`~repro.config.SanitizeConfig`, per call through
``build_hierarchy(..., sanitize=...)``, or process-wide through
``REPRO_SANITIZE=1`` (which lets the entire test suite run sanitized
unmodified).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..config import SanitizeConfig
from ..errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hierarchy.base import BaseHierarchy
    from ..hierarchy.mshr import MSHRFile

#: environment variable overriding ``SanitizeConfig.enabled``:
#: ``"1"`` (or any non-``"0"`` value) forces sanitizing on, ``"0"``
#: forces it off, unset defers to the configuration.
ENV_VAR = "REPRO_SANITIZE"


@dataclass(frozen=True)
class Violation:
    """One invariant violation with exact coordinates.

    ``line_addr`` / ``set_index`` / ``way`` are filled in whenever the
    violation concerns a specific line so fail-fast diagnostics name
    the corrupt state precisely; structural violations (e.g. a counter
    imbalance) leave them ``None``.
    """

    checker: str
    message: str
    line_addr: Optional[int] = None
    set_index: Optional[int] = None
    way: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.line_addr is not None:
            where.append(f"line {self.line_addr:#x}")
        if self.set_index is not None:
            where.append(f"set {self.set_index}")
        if self.way is not None:
            where.append(f"way {self.way}")
        location = f" [{', '.join(where)}]" if where else ""
        return f"{self.checker}: {self.message}{location}"


class InvariantChecker:
    """One structural property of a hierarchy, checked on demand.

    Subclasses set :attr:`name` (the registry key), override
    :meth:`applies_to` to opt out of hierarchy modes where the
    property does not hold, and implement :meth:`check`, which must
    inspect state without mutating it.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.sanitizer: Optional["HierarchySanitizer"] = None

    def applies_to(self, hierarchy: "BaseHierarchy") -> bool:
        """Does this property hold for ``hierarchy``'s mode?"""
        return True

    def check(self, hierarchy: "BaseHierarchy") -> List[Violation]:
        """Return every violation currently present (empty if clean)."""
        raise NotImplementedError

    def violation(self, message: str, **coords) -> Violation:
        """Build a :class:`Violation` attributed to this checker."""
        return Violation(checker=self.name, message=message, **coords)


class HierarchySanitizer:
    """Runs invariant checkers against one hierarchy on a sampling clock.

    Attach with :meth:`repro.hierarchy.base.BaseHierarchy.attach_sanitizer`
    (done automatically when the hierarchy's
    :class:`~repro.config.SanitizeConfig` or ``REPRO_SANITIZE`` enables
    sanitizing).  The hierarchy calls :meth:`on_access` once per demand
    access; every ``interval``-th call triggers a full scan.
    """

    def __init__(
        self,
        config: SanitizeConfig = SanitizeConfig(enabled=True),
        checkers: Optional[Sequence[InvariantChecker]] = None,
    ) -> None:
        if checkers is None:
            from .checkers import default_checkers

            checkers = default_checkers(config.checkers)
        self.config = config
        self.all_checkers: List[InvariantChecker] = list(checkers)
        for checker in self.all_checkers:
            checker.sanitizer = self
        #: checkers applicable to the attached hierarchy's mode.
        self.active_checkers: List[InvariantChecker] = []
        self.hierarchy: Optional["BaseHierarchy"] = None
        #: MSHR files registered by the CPU layer (see CMPSimulator).
        self.mshrs: List["MSHRFile"] = []
        #: violations found in collect mode (fail-fast raises instead).
        self.violations: List[Violation] = []
        self.scans = 0
        self._access_count = 0
        # line addr -> access count at which its exemption expires;
        # populated by intentional (ECI / modified-QBS) invalidates.
        self._eci_window: Dict[int, int] = {}

    # -- wiring ---------------------------------------------------------------
    def attach(self, hierarchy: "BaseHierarchy") -> None:
        """Bind to a hierarchy and select the applicable checkers."""
        self.hierarchy = hierarchy
        self.active_checkers = [
            checker
            for checker in self.all_checkers
            if checker.applies_to(hierarchy)
        ]

    def register_mshr(self, mshr: "MSHRFile") -> None:
        """Register an MSHR file for leak checking (CPU layer calls this)."""
        if mshr not in self.mshrs:
            self.mshrs.append(mshr)

    # -- audit hooks (called from the hierarchy hot path) ---------------------
    def on_access(self) -> None:
        """One demand access happened; scan if the interval elapsed."""
        self._access_count += 1
        if self._access_count % self.config.interval == 0:
            self.run()

    def note_intentional_invalidate(self, line_addr: int) -> None:
        """The hierarchy announced an intentional early invalidate.

        ECI and modified QBS remove core copies of a line that stays
        LLC-resident.  In a hierarchy with in-flight invalidate
        messages a core may transiently disagree with the LLC about
        such a line, so the inclusion check exempts it for
        ``eci_window`` accesses.  With the default window of 0 this is
        a no-op and the check stays fully strict.
        """
        if self.config.eci_window:
            self._eci_window[line_addr] = (
                self._access_count + self.config.eci_window
            )

    def in_eci_window(self, line_addr: int) -> bool:
        """Is ``line_addr`` currently exempt as an in-flight invalidate?"""
        expires = self._eci_window.get(line_addr)
        if expires is None:
            return False
        if expires < self._access_count:
            del self._eci_window[line_addr]
            return False
        return True

    # -- scanning -------------------------------------------------------------
    def run(self) -> List[Violation]:
        """Run every active checker once; raise or collect violations."""
        if self.hierarchy is None:
            raise SanitizerError("sanitizer is not attached to a hierarchy")
        self.scans += 1
        found: List[Violation] = []
        for checker in self.active_checkers:
            found.extend(checker.check(self.hierarchy))
        if found:
            if self.config.fail_fast:
                raise SanitizerError(self._format(found))
            self.violations.extend(found)
        return found

    def final_check(self) -> List[Violation]:
        """End-of-run scan (CMPSimulator calls this after the last access)."""
        return self.run()

    def _format(self, violations: List[Violation]) -> str:
        lines = [
            f"CacheSan: {len(violations)} invariant violation(s) after "
            f"{self._access_count} accesses (scan {self.scans})"
        ]
        lines.extend(f"  - {violation}" for violation in violations)
        return "\n".join(lines)

    def report(self) -> str:
        """Human-readable summary of a collect-mode run."""
        if not self.violations:
            return (
                f"CacheSan: clean — {self.scans} scans, "
                f"{len(self.active_checkers)} checkers, no violations"
            )
        return self._format(self.violations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(c.name for c in self.active_checkers) or "unbound"
        return f"<HierarchySanitizer [{names}] interval={self.config.interval}>"


def env_override(enabled: bool) -> bool:
    """Apply the ``REPRO_SANITIZE`` override to a configured flag."""
    value = os.environ.get(ENV_VAR)
    if value is None or value == "":
        return enabled
    return value != "0"


def sanitizer_from_config(
    config: SanitizeConfig,
) -> Optional[HierarchySanitizer]:
    """Build a sanitizer for ``config`` (None when disabled).

    The ``REPRO_SANITIZE`` environment variable wins over
    ``config.enabled`` in both directions so a whole process can be
    switched without touching code.
    """
    if not env_override(config.enabled):
        return None
    return HierarchySanitizer(config)


def coerce_sanitizer(value: object) -> Optional[HierarchySanitizer]:
    """Normalise a ``build_hierarchy(..., sanitize=...)`` argument.

    Accepts ``True``/``False``, a :class:`~repro.config.SanitizeConfig`,
    or a ready :class:`HierarchySanitizer`; returns the sanitizer to
    attach (None to detach).  Unlike :func:`sanitizer_from_config`
    this is an *explicit* request, so the env var does not override it.
    """
    if isinstance(value, HierarchySanitizer):
        return value
    if isinstance(value, SanitizeConfig):
        return HierarchySanitizer(value) if value.enabled else None
    if isinstance(value, bool):
        return HierarchySanitizer() if value else None
    raise TypeError(
        f"sanitize must be a bool, SanitizeConfig or HierarchySanitizer, "
        f"got {type(value).__name__}"
    )
