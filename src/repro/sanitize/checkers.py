"""Concrete CacheSan invariant checkers.

Each checker pins one structural property the paper's results depend
on.  All checkers are read-only: they walk tag stores, replacement
metadata, the sharer directory and the stats counters, and report
:class:`~repro.sanitize.base.Violation` records with exact
set/way/line-address coordinates.

Registry: :data:`CHECKERS` maps names (usable in
``SanitizeConfig.checkers``) to classes; :func:`default_checkers`
instantiates a selection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

from ..cache import Cache
from ..cache.replacement.base import ReplacementPolicy
from ..coherence import MessageType
from ..errors import ConfigurationError, SimulationError
from ..metrics.stats import counter_conservation
from .base import InvariantChecker, Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hierarchy.base import BaseHierarchy


def _core_arrays(hierarchy: "BaseHierarchy") -> Iterable[Tuple[str, Cache]]:
    """Yield ``(label, cache)`` for every core-cache array."""
    for core in hierarchy.cores:
        for kind in core.KINDS:
            yield f"core{core.core_id}.{kind}", core.cache_for_kind(kind)


def _all_arrays(hierarchy: "BaseHierarchy") -> Iterable[Tuple[str, Cache]]:
    yield from _core_arrays(hierarchy)
    yield "llc", hierarchy.llc


class InclusionChecker(InvariantChecker):
    """Core caches must be a subset of an inclusive LLC.

    Lines inside the sanitizer's ECI allowlist window (announced via
    :meth:`HierarchySanitizer.note_intentional_invalidate`) are
    exempt: ECI / modified QBS intentionally invalidate core copies of
    an LLC-resident line, and a decoupled hierarchy may deliver those
    invalidates with a delay.  With the default window of 0 the check
    is fully strict.
    """

    name = "inclusion"

    def applies_to(self, hierarchy: "BaseHierarchy") -> bool:
        return hierarchy.mode == "inclusive"

    def check(self, hierarchy: "BaseHierarchy") -> List[Violation]:
        violations: List[Violation] = []
        sanitizer = self.sanitizer
        for label, cache in _core_arrays(hierarchy):
            for line_addr in cache.resident_lines():
                if hierarchy.llc.contains(line_addr):
                    continue
                if sanitizer is not None and sanitizer.in_eci_window(line_addr):
                    continue
                set_index = cache.set_index_of(line_addr)
                violations.append(
                    self.violation(
                        f"{label} holds a line absent from the inclusive "
                        f"LLC (LLC set {hierarchy.llc.set_index_of(line_addr)})"
                        " — missing back-invalidate?",
                        line_addr=line_addr,
                        set_index=set_index,
                        way=cache.way_of(line_addr),
                    )
                )
        return violations


class ExclusionChecker(InvariantChecker):
    """No line may live in both an L2 and an exclusive LLC.

    L1/LLC overlap is tolerated, exactly as in
    :meth:`ExclusiveHierarchy.check_invariants`: an L2 can evict a line
    to the LLC while an L1 still holds it, and real exclusive designs
    accept the same transient.
    """

    name = "exclusion"

    def applies_to(self, hierarchy: "BaseHierarchy") -> bool:
        return hierarchy.mode == "exclusive"

    def check(self, hierarchy: "BaseHierarchy") -> List[Violation]:
        violations: List[Violation] = []
        for core in hierarchy.cores:
            for line_addr in core.l2.resident_lines():
                if hierarchy.llc.contains(line_addr):
                    violations.append(
                        self.violation(
                            f"core{core.core_id}.l2 and the exclusive LLC "
                            "both hold the line",
                            line_addr=line_addr,
                            set_index=hierarchy.llc.set_index_of(line_addr),
                            way=hierarchy.llc.way_of(line_addr),
                        )
                    )
        return violations


class DuplicateLineChecker(InvariantChecker):
    """Tag stores must be internally consistent.

    For every array: each map entry must point at a valid way holding
    the mapped address, no two addresses may map to one way, and no
    valid way may be missing from the map (an orphan line is
    unevictable and silently shrinks the set).  For the victim-cache
    hierarchy, victim-buffer entries must not be LLC- or core-resident
    (they were back-invalidated on eviction).
    """

    name = "duplicate-line"

    def check(self, hierarchy: "BaseHierarchy") -> List[Violation]:
        violations: List[Violation] = []
        for label, cache in _all_arrays(hierarchy):
            violations.extend(self._check_array(label, cache))
        victim_cache = getattr(hierarchy, "victim_cache", None)
        if victim_cache is not None:
            violations.extend(self._check_victim_buffer(hierarchy, victim_cache))
        return violations

    def _check_array(self, label: str, cache: Cache) -> List[Violation]:
        violations: List[Violation] = []
        seen_slots = set()
        mapped_per_set = [0] * cache.num_sets
        for line_addr, way in cache.map_items():
            set_index = cache.set_index_of(line_addr)
            mapped_per_set[set_index] += 1
            slot = (set_index, way)
            if slot in seen_slots:
                violations.append(
                    self.violation(
                        f"{label}: two map entries share one way",
                        line_addr=line_addr,
                        set_index=set_index,
                        way=way,
                    )
                )
            seen_slots.add(slot)
            held_addr = cache.addr_at(set_index, way)
            if held_addr != line_addr:
                held = f"{held_addr:#x}" if held_addr is not None else "invalid"
                violations.append(
                    self.violation(
                        f"{label}: map entry points at a way holding "
                        f"{held}",
                        line_addr=line_addr,
                        set_index=set_index,
                        way=way,
                    )
                )
        for set_index in range(cache.num_sets):
            valid_ways = cache.set_occupancy(set_index)
            if valid_ways != mapped_per_set[set_index]:
                violations.append(
                    self.violation(
                        f"{label}: {valid_ways} valid ways but "
                        f"{mapped_per_set[set_index]} map entries "
                        "(orphan line)",
                        set_index=set_index,
                    )
                )
        return violations

    def _check_victim_buffer(
        self, hierarchy: "BaseHierarchy", victim_cache
    ) -> List[Violation]:
        violations: List[Violation] = []
        if len(victim_cache) > victim_cache.num_entries:
            violations.append(
                self.violation(
                    f"victim cache holds {len(victim_cache)} entries, "
                    f"capacity {victim_cache.num_entries}"
                )
            )
        for line_addr in victim_cache.resident_lines():
            if hierarchy.llc.contains(line_addr):
                violations.append(
                    self.violation(
                        "victim-cache entry duplicated in the LLC",
                        line_addr=line_addr,
                        set_index=hierarchy.llc.set_index_of(line_addr),
                        way=hierarchy.llc.way_of(line_addr),
                    )
                )
            for core in hierarchy.cores:
                if core.holds(line_addr):
                    violations.append(
                        self.violation(
                            f"victim-cache entry still resident in "
                            f"core{core.core_id} "
                            f"({'/'.join(core.holding_kinds(line_addr))})",
                            line_addr=line_addr,
                        )
                    )
        return violations


class ReplacementMetadataChecker(InvariantChecker):
    """Replacement metadata must stay well-formed.

    Delegates to :meth:`ReplacementPolicy.validate_set`: recency
    stacks must be permutations of the ways, NRU/PLRU bits and RRPVs
    must be in range.  A policy without per-set structure validates
    vacuously.
    """

    name = "replacement-metadata"

    def check(self, hierarchy: "BaseHierarchy") -> List[Violation]:
        violations: List[Violation] = []
        for label, cache in _all_arrays(hierarchy):
            violations.extend(self._check_policy(label, cache.policy))
        return violations

    def _check_policy(
        self, label: str, policy: ReplacementPolicy
    ) -> List[Violation]:
        violations: List[Violation] = []
        for set_index in range(policy.num_sets):
            try:
                policy.validate_set(set_index)
            except SimulationError as exc:
                violations.append(
                    self.violation(f"{label}: {exc}", set_index=set_index)
                )
        return violations


class MSHRLeakChecker(InvariantChecker):
    """MSHR files must never leak or over-allocate entries.

    Checks every MSHR file the CPU layer registered with the
    sanitizer: outstanding entries bounded by capacity (an unbounded
    heap means completions are never drained — a leak), peak occupancy
    within capacity, and stall counters consistent with allocations.
    """

    name = "mshr-leak"

    def check(self, hierarchy: "BaseHierarchy") -> List[Violation]:
        violations: List[Violation] = []
        if self.sanitizer is None:
            return violations
        for index, mshr in enumerate(self.sanitizer.mshrs):
            inflight = mshr.inflight()
            if inflight > mshr.num_entries:
                violations.append(
                    self.violation(
                        f"mshr[{index}]: {inflight} outstanding entries "
                        f"exceed the {mshr.num_entries}-entry file (leak)"
                    )
                )
            if mshr.stats.peak_occupancy > mshr.num_entries:
                violations.append(
                    self.violation(
                        f"mshr[{index}]: peak occupancy "
                        f"{mshr.stats.peak_occupancy} exceeds capacity "
                        f"{mshr.num_entries}"
                    )
                )
            if mshr.stats.stalls > mshr.stats.allocations:
                violations.append(
                    self.violation(
                        f"mshr[{index}]: {mshr.stats.stalls} stalls but "
                        f"only {mshr.stats.allocations} allocations"
                    )
                )
        return violations


class DirectoryConsistencyChecker(InvariantChecker):
    """The sharer directory must never under-approximate residency.

    A clear bit means "definitely absent" (that is what makes
    back-invalidates and QBS queries sound), so every core-resident
    line must have its sharer bit set.  In inclusive hierarchies the
    directory must also track only LLC-resident lines (state is
    dropped on eviction).  Exclusive hierarchies are skipped: an LLC
    hit-invalidate legitimately drops other cores' stale bits.
    """

    name = "directory"

    def applies_to(self, hierarchy: "BaseHierarchy") -> bool:
        return hierarchy.mode in ("inclusive", "non_inclusive")

    def check(self, hierarchy: "BaseHierarchy") -> List[Violation]:
        violations: List[Violation] = []
        directory = hierarchy.directory
        for core in hierarchy.cores:
            for line_addr in core.resident_lines():
                if not directory.is_sharer(line_addr, core.core_id):
                    violations.append(
                        self.violation(
                            f"core{core.core_id} holds the line "
                            f"({'/'.join(core.holding_kinds(line_addr))}) "
                            "but its directory sharer bit is clear",
                            line_addr=line_addr,
                        )
                    )
        if hierarchy.mode == "inclusive":
            for line_addr in directory.tracked_lines():
                if not hierarchy.llc.contains(line_addr):
                    violations.append(
                        self.violation(
                            "directory tracks a line the inclusive LLC "
                            "no longer holds",
                            line_addr=line_addr,
                            set_index=hierarchy.llc.set_index_of(line_addr),
                        )
                    )
        return violations


class StatsConservationChecker(InvariantChecker):
    """Event counters must obey their conservation laws.

    Per array: ``fills - evictions - invalidations == occupancy`` and
    no negative or inconsistent dirty counters (via
    :func:`repro.metrics.stats.counter_conservation`).  Per hierarchy:
    the global inclusion-victim total must equal the per-core sum, and
    recorded victims must reconcile with observed back-invalidate /
    ECI-invalidate message traffic.
    """

    name = "stats-conservation"

    def check(self, hierarchy: "BaseHierarchy") -> List[Violation]:
        violations: List[Violation] = []
        for label, cache in _all_arrays(hierarchy):
            for problem in counter_conservation(
                cache.stats.snapshot(), cache.occupancy()
            ):
                violations.append(self.violation(f"{label}: {problem}"))
        per_core_victims = sum(
            stats.inclusion_victims for stats in hierarchy.core_stats
        )
        if per_core_victims != hierarchy.total_inclusion_victims:
            violations.append(
                self.violation(
                    f"total_inclusion_victims "
                    f"({hierarchy.total_inclusion_victims}) != per-core sum "
                    f"({per_core_victims})"
                )
            )
        traffic = hierarchy.traffic.counts
        if hierarchy.total_inclusion_victims > traffic[MessageType.BACK_INVALIDATE]:
            violations.append(
                self.violation(
                    f"{hierarchy.total_inclusion_victims} inclusion victims "
                    f"recorded but only "
                    f"{traffic[MessageType.BACK_INVALIDATE]} back-invalidate "
                    "messages sent"
                )
            )
        eci_invalidations = sum(
            stats.eci_invalidations for stats in hierarchy.core_stats
        )
        if eci_invalidations > traffic[MessageType.ECI_INVALIDATE]:
            violations.append(
                self.violation(
                    f"{eci_invalidations} early invalidations recorded but "
                    f"only {traffic[MessageType.ECI_INVALIDATE]} "
                    "ECI-invalidate messages sent"
                )
            )
        return violations


#: registry of every checker, keyed by its ``name``.
CHECKERS = {
    checker.name: checker
    for checker in (
        InclusionChecker,
        ExclusionChecker,
        DuplicateLineChecker,
        ReplacementMetadataChecker,
        MSHRLeakChecker,
        DirectoryConsistencyChecker,
        StatsConservationChecker,
    )
}


def default_checkers(names: Sequence[str] = ()) -> List[InvariantChecker]:
    """Instantiate the named checkers (all of them when ``names`` is empty).

    Mode filtering happens later, at
    :meth:`HierarchySanitizer.attach`, via each checker's
    :meth:`~InvariantChecker.applies_to`.
    """
    if not names:
        return [checker_cls() for checker_cls in CHECKERS.values()]
    unknown = sorted(set(names) - set(CHECKERS))
    if unknown:
        raise ConfigurationError(
            f"unknown sanitize checkers {unknown}; known: {sorted(CHECKERS)}"
        )
    return [CHECKERS[name]() for name in names]
