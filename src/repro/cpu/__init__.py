"""CPU-side model: per-core timing, trace consumption, CMP interleaving.

The functional hierarchy (:mod:`repro.hierarchy`) is exact; this
package converts its hit levels into cycles with a lightweight
out-of-order timing model (Section IV.A's 4-way/128-ROB core reduced
to an analytic form — see :class:`~repro.cpu.timing.CoreTimingModel`),
and interleaves the cores of a CMP by advancing whichever core is
earliest in simulated time.
"""

from .timing import CoreTimingModel
from .core import SimulatedCore
from .cmp import CMPSimulator, CoreResult, SimResult

__all__ = [
    "CoreTimingModel",
    "SimulatedCore",
    "CMPSimulator",
    "CoreResult",
    "SimResult",
]
