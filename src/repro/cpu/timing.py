"""Analytic out-of-order core timing model.

The paper's cores are 4-way out-of-order with a 128-entry ROB.  For a
trace-driven cache study the timing model only has to convert hit
levels into cycles *monotonically* — the paper itself verified its
conclusions hold "for different latencies including pure functional
cache simulation" (Section IV.A).  The model here:

* issues ``base_cpi`` cycles per instruction (4-wide = 0.25);
* charges an immediate, partial stall for loads and instruction
  fetches that miss the L1 (``load_exposure`` x latency) — the
  dependent-instruction exposure an OoO window cannot always hide;
* tracks outstanding off-core misses and stalls fully when the oldest
  one is still unresolved ``rob_window`` instructions later (the ROB
  fills) — this is what gives clustered misses their
  memory-level-parallelism discount relative to isolated ones;
* funnels LLC-and-beyond requests through the shared
  :class:`~repro.hierarchy.mshr.MSHRFile`, so bandwidth contention
  between cores lengthens miss latency as in Section IV.A.

Stores retire through a store buffer and charge only
``store_stall_fraction`` of their exposed latency.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..access import AccessType
from ..config import TimingConfig
from ..hierarchy import HIT_L1, HIT_L2, HIT_LLC, HIT_MEMORY
from ..hierarchy.mshr import MSHRFile


class CoreTimingModel:
    """Cycle accounting for one core."""

    def __init__(self, timing: TimingConfig, mshr: Optional[MSHRFile] = None) -> None:
        self.timing = timing
        self.mshr = mshr
        self.cycles = 0.0
        self.instructions = 0
        # Outstanding off-core misses: (instruction index at issue,
        # data-return cycle), oldest first.
        self._pending: Deque[Tuple[int, float]] = deque()
        self._latency = {
            HIT_L1: timing.l1_latency,
            HIT_L2: timing.l2_latency,
            HIT_LLC: timing.llc_latency,
            HIT_MEMORY: timing.llc_latency + timing.memory_latency,
        }

    def advance(self, instruction_count: int) -> None:
        """Execute ``instruction_count`` non-memory instructions."""
        if instruction_count > 0:
            self.instructions += instruction_count
            self.cycles += instruction_count * self.timing.base_cpi

    def step_account(self, gap: int, level: int, kind: AccessType) -> None:
        """Fused ``advance(gap)`` + ``record_access(level, kind)``.

        The burst step loop calls this once per trace record instead of
        paying two method calls.  It performs exactly the same
        floating-point operations in the same order as the separate
        calls, so cycle counts stay bit-identical either way.
        """
        if gap > 0:
            self.instructions += gap
            self.cycles += gap * self.timing.base_cpi
        self.instructions += 1
        self.cycles += self.timing.base_cpi
        if level == HIT_L1:
            return  # pipelined; no visible stall
        self._account_miss(level, kind)

    def record_access(self, level: int, kind: AccessType) -> None:
        """Account for one memory instruction that hit at ``level``."""
        self.instructions += 1
        self.cycles += self.timing.base_cpi
        if level == HIT_L1:
            return  # pipelined; no visible stall
        self._account_miss(level, kind)

    def _account_miss(self, level: int, kind: AccessType) -> None:
        """Stall accounting for an access that left the L1."""
        self._retire_returned()
        self._stall_on_full_rob()

        latency = float(self._latency[level])
        if self.mshr is not None and level >= HIT_LLC:
            issue = self.mshr.allocate(int(self.cycles), int(latency))
            return_cycle = issue + latency
        else:
            return_cycle = self.cycles + latency
        if kind is AccessType.IFETCH:
            # Front-end stall: fetch misses serialise and overlap with
            # nothing downstream.
            exposure = self.timing.ifetch_exposure
        else:
            # Memory-level parallelism: the more misses already in
            # flight, the more of this one's latency overlaps with
            # them.  Isolated (dependent) misses pay nearly full price.
            exposure = self.timing.load_exposure / (1 + len(self._pending))
            if kind is AccessType.STORE:
                exposure *= self.timing.store_stall_fraction
        self.cycles += (return_cycle - self.cycles) * exposure
        self._pending.append((self.instructions, return_cycle))

    def drain(self) -> None:
        """Wait for all outstanding misses (end of simulation)."""
        if self._pending:
            last_return = max(ret for _, ret in self._pending)
            if last_return > self.cycles:
                self.cycles = last_return
            self._pending.clear()

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    # -- internals -------------------------------------------------------------
    def _retire_returned(self) -> None:
        pending = self._pending
        now = self.cycles
        while pending and pending[0][1] <= now:
            pending.popleft()

    def _stall_on_full_rob(self) -> None:
        """The ROB cannot retire past an unresolved oldest miss."""
        window = self.timing.rob_window
        pending = self._pending
        while pending and self.instructions - pending[0][0] >= window:
            issued_at, return_cycle = pending.popleft()
            if return_cycle > self.cycles:
                self.cycles = return_cycle
