"""One simulated core: consumes a trace, drives the hierarchy, keeps time.

Statistics (both cycle counts for IPC and the hierarchy's per-core
demand counters) freeze once the core passes its instruction quota,
but the core keeps executing so it continues to compete for the
shared LLC — the methodology of paper Section IV.B.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..config import SimConfig
from ..errors import SimulationError
from ..hierarchy import HIT_LLC, BaseHierarchy
from ..hierarchy.mshr import MSHRFile
from ..perf.phase import PHASE_TRACE_GEN
from ..prefetch import make_prefetcher
from ..workloads.trace import TraceRecord
from .timing import CoreTimingModel


class SimulatedCore:
    """Trace-driven core front-end for one hardware context."""

    def __init__(
        self,
        core_id: int,
        trace: Iterator[TraceRecord],
        hierarchy: BaseHierarchy,
        config: SimConfig,
        mshr: Optional[MSHRFile] = None,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.hierarchy = hierarchy
        self.quota = config.instruction_quota
        self.warmup = config.warmup_instructions
        self.timing = CoreTimingModel(config.timing, mshr)
        self.prefetcher = None
        if config.prefetch.enabled:
            self.prefetcher = make_prefetcher(
                config.prefetch, hierarchy.line_shift
            )
        #: cycle counts captured at the measurement-window boundaries.
        self.cycles_at_warmup: float = 0.0 if self.warmup == 0 else -1.0
        self.cycles_at_quota: Optional[float] = None
        self._exhausted = False
        self._quota_end = self.warmup + self.quota
        #: interval collector hook; None (the default) keeps the step
        #: loop free of telemetry work.
        self._collector = None
        #: host phase-timer hook; None (the default) keeps the trace
        #: draw free of timing work.
        self._phase_timer = None

    def attach_collector(self, collector) -> None:
        """Install the telemetry hook (advances the hierarchy clock)."""
        self._collector = collector

    def attach_phase_timer(self, timer) -> None:
        """Install the host phase timer (wraps the trace draw)."""
        self._phase_timer = timer

    @property
    def instructions(self) -> int:
        return self.timing.instructions

    @property
    def cycles(self) -> float:
        return self.timing.cycles

    @property
    def quota_end(self) -> int:
        """Instruction count at which the measurement window closes."""
        return self._quota_end

    @property
    def done(self) -> bool:
        """Has this core retired its instruction quota (or run dry)?"""
        return self._exhausted or self.timing.instructions >= self._quota_end

    @property
    def recording(self) -> bool:
        """Is this core inside its measurement window?"""
        instructions = self.timing.instructions
        return self.warmup <= instructions < self._quota_end

    def step(self) -> bool:
        """Process one trace record; returns False if the trace ended.

        Finite traces simply stop advancing the core (infinite
        generators are the normal case for experiments).
        """
        timing = self.timing
        timer = self._phase_timer
        try:
            if timer is not None:
                timer.enter(PHASE_TRACE_GEN)
                try:
                    gap, kind, address = next(self.trace)
                finally:
                    timer.exit()
            else:
                gap, kind, address = next(self.trace)
        except StopIteration:
            self._exhausted = True
            self._finish()
            return False
        instructions = timing.instructions
        recording = self.warmup <= instructions < self._quota_end
        timing.advance(gap)
        collector = self._collector
        if collector is not None:
            # Telemetry clock: events fired by this access are stamped
            # with the issuing core's cycle count, and the interval
            # collector folds counter deltas at window boundaries.
            self.hierarchy.clock = timing.cycles
            collector.tick(timing.cycles)
        level = self.hierarchy.access(
            self.core_id, address, kind, record_stats=recording
        )
        timing.record_access(level, kind)
        if self.prefetcher is not None and level >= HIT_LLC:
            for prefetch_addr in self.prefetcher.train(address):
                self.hierarchy.prefetch(self.core_id, prefetch_addr)
        instructions = timing.instructions
        if self.cycles_at_warmup < 0 and instructions >= self.warmup:
            self.cycles_at_warmup = timing.cycles
        if recording and instructions >= self._quota_end:
            self._finish()
        return True

    def _finish(self) -> None:
        if self.cycles_at_quota is None:
            self.timing.drain()
            self.cycles_at_quota = self.timing.cycles
            if self.cycles_at_warmup < 0:
                # Trace ended during warm-up: no measurement window.
                self.cycles_at_warmup = self.timing.cycles

    def measured_instructions(self) -> int:
        """Instructions retired inside the measurement window."""
        end = min(self.timing.instructions, self.quota_end)
        return max(0, end - self.warmup)

    def ipc(self) -> float:
        """Committed IPC over the measured quota window."""
        if self.cycles_at_quota is None:
            raise SimulationError(
                f"core {self.core_id} has not reached its quota yet"
            )
        window = self.cycles_at_quota - self.cycles_at_warmup
        if window <= 0:
            return 0.0
        return self.measured_instructions() / window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimulatedCore {self.core_id} instr={self.instructions} "
            f"cycles={self.cycles:.0f}>"
        )
