"""One simulated core: consumes a trace, drives the hierarchy, keeps time.

Statistics (both cycle counts for IPC and the hierarchy's per-core
demand counters) freeze once the core passes its instruction quota,
but the core keeps executing so it continues to compete for the
shared LLC — the methodology of paper Section IV.B.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..access import AccessType
from ..cache import Cache
from ..config import SimConfig
from ..errors import SimulationError
from ..hierarchy import HIT_LLC, BaseHierarchy
from ..hierarchy.mshr import MSHRFile
from ..perf.phase import PHASE_L1_ACCESS, PHASE_TRACE_GEN
from ..prefetch import make_prefetcher
from ..workloads.trace import TraceRecord
from .timing import CoreTimingModel

# Hoisted enum members for the inline burst loop (attribute access on
# an Enum class costs a metaclass dict probe per record otherwise).
_IFETCH = AccessType.IFETCH
_STORE = AccessType.STORE


class SimulatedCore:
    """Trace-driven core front-end for one hardware context."""

    def __init__(
        self,
        core_id: int,
        trace: Iterator[TraceRecord],
        hierarchy: BaseHierarchy,
        config: SimConfig,
        mshr: Optional[MSHRFile] = None,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.hierarchy = hierarchy
        self.quota = config.instruction_quota
        self.warmup = config.warmup_instructions
        self.timing = CoreTimingModel(config.timing, mshr)
        self.prefetcher = None
        if config.prefetch.enabled:
            self.prefetcher = make_prefetcher(
                config.prefetch, hierarchy.line_shift
            )
        #: cycle counts captured at the measurement-window boundaries.
        self.cycles_at_warmup: float = 0.0 if self.warmup == 0 else -1.0
        self.cycles_at_quota: Optional[float] = None
        self._exhausted = False
        self._quota_end = self.warmup + self.quota
        #: interval collector hook; None (the default) keeps the step
        #: loop free of telemetry work.
        self._collector = None
        #: host phase-timer hook; None (the default) keeps the trace
        #: draw free of timing work.
        self._phase_timer = None

    def attach_collector(self, collector) -> None:
        """Install the telemetry hook (advances the hierarchy clock)."""
        self._collector = collector

    def attach_phase_timer(self, timer) -> None:
        """Install the host phase timer (wraps the trace draw)."""
        self._phase_timer = timer

    @property
    def instructions(self) -> int:
        return self.timing.instructions

    @property
    def cycles(self) -> float:
        return self.timing.cycles

    @property
    def quota_end(self) -> int:
        """Instruction count at which the measurement window closes."""
        return self._quota_end

    @property
    def done(self) -> bool:
        """Has this core retired its instruction quota (or run dry)?"""
        return self._exhausted or self.timing.instructions >= self._quota_end

    @property
    def recording(self) -> bool:
        """Is this core inside its measurement window?"""
        instructions = self.timing.instructions
        return self.warmup <= instructions < self._quota_end

    def step(self) -> bool:
        """Process one trace record; returns False if the trace ended.

        Finite traces simply stop advancing the core (infinite
        generators are the normal case for experiments).
        """
        timing = self.timing
        timer = self._phase_timer
        try:
            if timer is not None:
                timer.enter(PHASE_TRACE_GEN)
                try:
                    gap, kind, address = next(self.trace)
                finally:
                    timer.exit()
            else:
                gap, kind, address = next(self.trace)
        except StopIteration:
            self._exhausted = True
            self._finish()
            return False
        instructions = timing.instructions
        recording = self.warmup <= instructions < self._quota_end
        timing.advance(gap)
        collector = self._collector
        if collector is not None:
            # Telemetry clock: events fired by this access are stamped
            # with the issuing core's cycle count, and the interval
            # collector folds counter deltas at window boundaries.
            self.hierarchy.clock = timing.cycles
            collector.tick(timing.cycles)
        level = self.hierarchy.access(
            self.core_id, address, kind, record_stats=recording
        )
        timing.record_access(level, kind)
        if self.prefetcher is not None and level >= HIT_LLC:
            for prefetch_addr in self.prefetcher.train(address):
                self.hierarchy.prefetch(self.core_id, prefetch_addr)
        instructions = timing.instructions
        if self.cycles_at_warmup < 0 and instructions >= self.warmup:
            self.cycles_at_warmup = timing.cycles
        if recording and instructions >= self._quota_end:
            self._finish()
        return True

    def step_burst(self, count: int, stop_when_done: bool) -> Tuple[int, bool, bool]:
        """Process up to ``count`` trace records in one call (hot path).

        Returns ``(steps_executed, transitioned, exhausted)`` where
        ``transitioned`` reports whether this burst crossed the core's
        quota boundary (``done`` flipped False -> True) and
        ``exhausted`` whether the trace ended.  With
        ``stop_when_done=True`` the burst stops right after a quota
        transition — the CMP loop passes that when this core is the
        last one still measuring, so no extra steps (which would keep
        mutating the always-recorded traffic counters) run after the
        simulation's logical end.

        Observable behaviour is identical to ``count`` calls of
        :meth:`step`; the win is hoisting attribute lookups and method
        binding out of the per-record loop, and — when no hook of any
        kind is attached — probing the L1 inline so the common L1-hit
        record never leaves this frame.  Attached telemetry /
        prefetcher hooks fall back to the plain loop; a phase timer
        gets its own burst loop.
        """
        if self._collector is not None or self.prefetcher is not None:
            return self._step_burst_slow(count, stop_when_done)
        if self._phase_timer is not None:
            return self._step_burst_timer(count, stop_when_done)
        hierarchy = self.hierarchy
        if (
            hierarchy.sanitizer is not None
            or hierarchy._tla_hit_hook is not None
            or hierarchy.phase_timer is not None
            or type(hierarchy).access is not BaseHierarchy.access
        ):
            return self._step_burst_plain(count, stop_when_done)
        core = hierarchy.cores[self.core_id]
        if (
            type(core.l1i).access is not Cache.access
            or type(core.l1d).access is not Cache.access
        ):
            return self._step_burst_plain(count, stop_when_done)

        # Inline loop: the L1 probe and hit accounting happen right
        # here; only L1 misses call into the hierarchy.  Instruction
        # and cycle counts live in locals, flushed to the timing model
        # around every out-of-frame call so observable state is always
        # consistent — and the float operations (two adds when a gap
        # is present, one otherwise) are performed in exactly the
        # order ``CoreTimingModel.step_account`` performs them.
        timing = self.timing
        trace_next = self.trace.__next__
        beyond_l1 = hierarchy._beyond_l1
        step_account = timing.step_account
        core_id = self.core_id
        stats = hierarchy.core_stats[core_id]
        l1i_access = core.l1i.access
        l1d_access = core.l1d.access
        line_shift = hierarchy.line_shift
        base_cpi = timing.timing.base_cpi
        warmup = self.warmup
        quota_end = self._quota_end
        transitioned = False
        instructions = timing.instructions
        cycles = timing.cycles
        is_done = self._exhausted or instructions >= quota_end
        for step_index in range(count):
            try:
                gap, kind, address = trace_next()
            except StopIteration:
                timing.instructions = instructions
                timing.cycles = cycles
                self._exhausted = True
                self._finish()
                return step_index + 1, transitioned or not is_done, True
            recording = warmup <= instructions < quota_end
            line_addr = address >> line_shift
            if kind is _IFETCH:
                is_ifetch = True
                is_write = False
                if recording:
                    stats.l1i_accesses += 1
                hit = l1i_access(line_addr)
                if not hit and recording:
                    stats.l1i_misses += 1
            else:
                is_ifetch = False
                is_write = kind is _STORE
                if recording:
                    stats.l1d_accesses += 1
                hit = l1d_access(line_addr, write=is_write)
                if not hit and recording:
                    stats.l1d_misses += 1
            if hit:
                if gap > 0:
                    instructions += gap
                    cycles += gap * base_cpi
                instructions += 1
                cycles += base_cpi
            else:
                timing.instructions = instructions
                timing.cycles = cycles
                level = beyond_l1(
                    core_id,
                    core,
                    stats if recording else None,
                    line_addr,
                    is_ifetch,
                    is_write,
                )
                step_account(gap, level, kind)
                instructions = timing.instructions
                cycles = timing.cycles
            if self.cycles_at_warmup < 0 and instructions >= warmup:
                self.cycles_at_warmup = cycles
            if not is_done and instructions >= quota_end:
                is_done = True
                transitioned = True
                if recording:
                    timing.instructions = instructions
                    timing.cycles = cycles
                    self._finish()  # drain may advance the clock
                    instructions = timing.instructions
                    cycles = timing.cycles
                if stop_when_done:
                    timing.instructions = instructions
                    timing.cycles = cycles
                    return step_index + 1, True, False
        timing.instructions = instructions
        timing.cycles = cycles
        return count, transitioned, False

    def _step_burst_plain(
        self, count: int, stop_when_done: bool
    ) -> Tuple[int, bool, bool]:
        """Hoisted-bindings burst used when the inline L1 path is unsafe
        (sanitizer attached, TLH hit hook installed, or subclassed
        hierarchy/cache access methods)."""
        timing = self.timing
        trace_next = self.trace.__next__
        access = self.hierarchy.access
        step_account = timing.step_account
        core_id = self.core_id
        warmup = self.warmup
        quota_end = self._quota_end
        transitioned = False
        is_done = self._exhausted or timing.instructions >= quota_end
        for step_index in range(count):
            try:
                gap, kind, address = trace_next()
            except StopIteration:
                self._exhausted = True
                self._finish()
                return step_index + 1, transitioned or not is_done, True
            instructions = timing.instructions
            recording = warmup <= instructions < quota_end
            level = access(core_id, address, kind, record_stats=recording)
            step_account(gap, level, kind)
            instructions = timing.instructions
            if self.cycles_at_warmup < 0 and instructions >= warmup:
                self.cycles_at_warmup = timing.cycles
            if not is_done and instructions >= quota_end:
                is_done = True
                transitioned = True
                if recording:
                    self._finish()
                if stop_when_done:
                    return step_index + 1, True, False
        return count, transitioned, False

    def _step_burst_timer(
        self, count: int, stop_when_done: bool
    ) -> Tuple[int, bool, bool]:
        """Burst loop for phase-timed runs: identical semantics to the
        plain loop plus the ``trace_gen`` phase bracket around each
        trace draw (the hierarchy brackets its own phases inside
        ``access``).

        When the hierarchy is hook-free and shares this core's timer,
        the L1 probe runs inline here with the same ``l1_access``
        bracket ``BaseHierarchy.access`` would have opened, so the
        phase stream (and every counter) is bit-identical to the
        fallback loop below while the common L1-hit record never
        leaves this frame.
        """
        hierarchy = self.hierarchy
        timer = self._phase_timer
        if (
            hierarchy.sanitizer is None
            and hierarchy._tla_hit_hook is None
            and hierarchy.phase_timer is timer
            and type(hierarchy).access is BaseHierarchy.access
        ):
            core = hierarchy.cores[self.core_id]
            if (
                type(core.l1i).access is Cache.access
                and type(core.l1d).access is Cache.access
            ):
                return self._step_burst_timer_inline(
                    count, stop_when_done, core, timer
                )
        return self._step_burst_timer_plain(count, stop_when_done)

    def _step_burst_timer_inline(
        self, count: int, stop_when_done: bool, core, timer
    ) -> Tuple[int, bool, bool]:
        """Inline-L1 burst with phase brackets (see _step_burst_timer)."""
        timing = self.timing
        timer_enter = timer.enter
        timer_exit = timer.exit
        timer_switch = timer.switch
        trace_next = self.trace.__next__
        hierarchy = self.hierarchy
        beyond_l1 = hierarchy._beyond_l1
        step_account = timing.step_account
        core_id = self.core_id
        stats = hierarchy.core_stats[core_id]
        l1i_access = core.l1i.access
        l1d_access = core.l1d.access
        line_shift = hierarchy.line_shift
        base_cpi = timing.timing.base_cpi
        warmup = self.warmup
        quota_end = self._quota_end
        transitioned = False
        instructions = timing.instructions
        cycles = timing.cycles
        is_done = self._exhausted or instructions >= quota_end
        for step_index in range(count):
            timer_enter(PHASE_TRACE_GEN)
            try:
                gap, kind, address = trace_next()
            except StopIteration:
                timer_exit()
                timing.instructions = instructions
                timing.cycles = cycles
                self._exhausted = True
                self._finish()
                return step_index + 1, transitioned or not is_done, True
            recording = warmup <= instructions < quota_end
            line_addr = address >> line_shift
            # One fused transition (trace_gen -> l1_access) instead of
            # exit + enter: half the clock reads per record.
            timer_switch(PHASE_L1_ACCESS)
            if kind is _IFETCH:
                is_ifetch = True
                is_write = False
                if recording:
                    stats.l1i_accesses += 1
                hit = l1i_access(line_addr)
                if not hit and recording:
                    stats.l1i_misses += 1
            else:
                is_ifetch = False
                is_write = kind is _STORE
                if recording:
                    stats.l1d_accesses += 1
                hit = l1d_access(line_addr, write=is_write)
                if not hit and recording:
                    stats.l1d_misses += 1
            if hit:
                timer_exit()
                if gap > 0:
                    instructions += gap
                    cycles += gap * base_cpi
                instructions += 1
                cycles += base_cpi
            else:
                # _beyond_l1 exits the still-open l1_access phase
                # itself (and brackets llc_access), exactly as it does
                # when called from BaseHierarchy.access.
                timing.instructions = instructions
                timing.cycles = cycles
                level = beyond_l1(
                    core_id,
                    core,
                    stats if recording else None,
                    line_addr,
                    is_ifetch,
                    is_write,
                )
                step_account(gap, level, kind)
                instructions = timing.instructions
                cycles = timing.cycles
            if self.cycles_at_warmup < 0 and instructions >= warmup:
                self.cycles_at_warmup = cycles
            if not is_done and instructions >= quota_end:
                is_done = True
                transitioned = True
                if recording:
                    timing.instructions = instructions
                    timing.cycles = cycles
                    self._finish()  # drain may advance the clock
                    instructions = timing.instructions
                    cycles = timing.cycles
                if stop_when_done:
                    timing.instructions = instructions
                    timing.cycles = cycles
                    return step_index + 1, True, False
        timing.instructions = instructions
        timing.cycles = cycles
        return count, transitioned, False

    def _step_burst_timer_plain(
        self, count: int, stop_when_done: bool
    ) -> Tuple[int, bool, bool]:
        """Hook-compatible phase-timed burst (hoisted bindings only)."""
        timing = self.timing
        timer = self._phase_timer
        timer_enter = timer.enter
        timer_exit = timer.exit
        trace_next = self.trace.__next__
        access = self.hierarchy.access
        step_account = timing.step_account
        core_id = self.core_id
        warmup = self.warmup
        quota_end = self._quota_end
        transitioned = False
        is_done = self._exhausted or timing.instructions >= quota_end
        for step_index in range(count):
            timer_enter(PHASE_TRACE_GEN)
            try:
                gap, kind, address = trace_next()
            except StopIteration:
                timer_exit()
                self._exhausted = True
                self._finish()
                return step_index + 1, transitioned or not is_done, True
            timer_exit()
            instructions = timing.instructions
            recording = warmup <= instructions < quota_end
            level = access(core_id, address, kind, record_stats=recording)
            step_account(gap, level, kind)
            instructions = timing.instructions
            if self.cycles_at_warmup < 0 and instructions >= warmup:
                self.cycles_at_warmup = timing.cycles
            if not is_done and instructions >= quota_end:
                is_done = True
                transitioned = True
                if recording:
                    self._finish()
                if stop_when_done:
                    return step_index + 1, True, False
        return count, transitioned, False

    def _step_burst_slow(
        self, count: int, stop_when_done: bool
    ) -> Tuple[int, bool, bool]:
        """Hook-compatible burst: plain :meth:`step` calls."""
        transitioned = False
        for step_index in range(count):
            was_done = self.done
            progressed = self.step()
            if not was_done and self.done:
                transitioned = True
            if not progressed:
                return step_index + 1, transitioned, True
            if transitioned and stop_when_done:
                return step_index + 1, True, False
        return count, transitioned, False

    def _finish(self) -> None:
        if self.cycles_at_quota is None:
            self.timing.drain()
            self.cycles_at_quota = self.timing.cycles
            if self.cycles_at_warmup < 0:
                # Trace ended during warm-up: no measurement window.
                self.cycles_at_warmup = self.timing.cycles

    def measured_instructions(self) -> int:
        """Instructions retired inside the measurement window."""
        end = min(self.timing.instructions, self.quota_end)
        return max(0, end - self.warmup)

    def ipc(self) -> float:
        """Committed IPC over the measured quota window."""
        if self.cycles_at_quota is None:
            raise SimulationError(
                f"core {self.core_id} has not reached its quota yet"
            )
        window = self.cycles_at_quota - self.cycles_at_warmup
        if window <= 0:
            return 0.0
        return self.measured_instructions() / window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimulatedCore {self.core_id} instr={self.instructions} "
            f"cycles={self.cycles:.0f}>"
        )
