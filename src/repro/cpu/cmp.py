"""Multi-core CMP simulator: interleaving, termination, results.

Cores are advanced one memory instruction at a time, always picking
the core that is earliest in simulated time, so contention at the
shared LLC unfolds in (approximate) global cycle order.  Per the
paper's methodology (Section IV.B), a core that finishes its
instruction quota keeps executing — and keeps competing for cache
space — until every core has finished; its statistics are frozen at
the quota boundary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..config import SimConfig
from ..errors import SimulationError
from ..hierarchy import BaseHierarchy, CoreAccessStats, build_hierarchy
from ..hierarchy.mshr import MSHRFile
from ..perf.phase import PHASE_SIM_LOOP, PhaseTimer
from ..telemetry import (
    IntervalCollector,
    IntervalSeries,
    TelemetryConfig,
    Tracer,
)
from ..workloads.trace import TraceRecord
from .core import SimulatedCore


@dataclass(frozen=True)
class CoreResult:
    """Measured quantities for one core over its quota window."""

    core_id: int
    instructions: int
    cycles: float
    ipc: float
    stats: CoreAccessStats

    def mpki(self, level: str) -> float:
        return self.stats.mpki(level, self.instructions)


@dataclass
class SimResult:
    """Everything a finished CMP run produced."""

    config: SimConfig
    cores: List[CoreResult]
    traffic: Dict[str, int]
    total_inclusion_victims: int
    llc_stats: Dict[str, int]
    tla_name: str
    #: wall-clock of the slowest core's quota window, used for
    #: messages-per-kilo-cycle traffic rates.
    max_cycles: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: fixed-window telemetry time series (None unless the run had
    #: telemetry configured; see :mod:`repro.telemetry.intervals`).
    intervals: Optional[IntervalSeries] = None
    #: host-side performance digest (wall seconds, simulated-work rates
    #: and, when a :class:`repro.perf.PhaseTimer` was attached, its
    #: per-phase exclusive-time report).  Pure provenance about *this
    #: execution of the simulator* — never part of the simulated
    #: output, never written to the result cache.
    host: Optional[Dict[str, object]] = None

    @property
    def ipcs(self) -> List[float]:
        return [core.ipc for core in self.cores]

    @property
    def throughput(self) -> float:
        """Sum-of-IPCs throughput metric (paper footnote 5)."""
        return sum(self.ipcs)

    @property
    def total_llc_misses(self) -> int:
        return sum(core.stats.llc_misses for core in self.cores)

    @property
    def total_llc_accesses(self) -> int:
        return sum(core.stats.llc_accesses for core in self.cores)

    @property
    def total_instructions(self) -> int:
        return sum(core.instructions for core in self.cores)


class CMPSimulator:
    """Drive N trace streams through one shared hierarchy."""

    def __init__(
        self,
        config: SimConfig,
        traces: Sequence[Iterator[TraceRecord]],
        hierarchy: Optional[BaseHierarchy] = None,
        telemetry: Optional[TelemetryConfig] = None,
        phase_timer: Optional[PhaseTimer] = None,
    ) -> None:
        if len(traces) != config.hierarchy.num_cores:
            raise SimulationError(
                f"{config.hierarchy.num_cores} cores need "
                f"{config.hierarchy.num_cores} traces, got {len(traces)}"
            )
        self.config = config
        self.hierarchy = hierarchy or build_hierarchy(config.hierarchy)
        self.mshr = MSHRFile(config.timing.mshr_entries)
        if self.hierarchy.sanitizer is not None:
            self.hierarchy.sanitizer.register_mshr(self.mshr)
        self.cores = [
            SimulatedCore(core_id, trace, self.hierarchy, config, self.mshr)
            for core_id, trace in enumerate(traces)
        ]
        # Telemetry session: a tracer on the hierarchy/MSHR hook sites
        # (event tracing) and an interval collector driven by the step
        # hook (time series).  Inactive telemetry installs nothing, so
        # the simulation paths stay hook-free.
        self.tracer: Optional[Tracer] = None
        self._collector: Optional[IntervalCollector] = None
        if telemetry is not None and telemetry.active:
            if telemetry.enabled:
                self.tracer = Tracer(
                    categories=telemetry.categories,
                    sample=telemetry.sample,
                    max_events=telemetry.max_events,
                )
                self.hierarchy.tracer = self.tracer
                self.mshr.tracer = self.tracer
            self._collector = IntervalCollector(
                self.hierarchy, telemetry.effective_interval
            )
            for core in self.cores:
                core.attach_collector(self._collector)
        # Host-side phase timer: attributes the simulator's own wall
        # time to phases (trace_gen / l1_access / llc_access / ...).
        # A disabled (or absent) timer installs nothing, so the demand
        # path keeps its ``is None`` fast branch; attaching never
        # changes simulated statistics.
        self.phase_timer: Optional[PhaseTimer] = phase_timer
        if phase_timer is not None and phase_timer.enabled:
            self.hierarchy.phase_timer = phase_timer
            for core in self.cores:
                core.attach_phase_timer(phase_timer)

    def run(self, check_invariants_every: int = 0) -> SimResult:
        """Run until every core completes its quota; returns results.

        Args:
            check_invariants_every: if positive, call the hierarchy's
                structural invariant check every N steps (slow; for
                tests).
        """
        # ``active`` cores still have trace left to execute; ``remaining``
        # counts cores that have not yet finished their quota.  Cores
        # past their quota stay active so they keep competing for the
        # shared LLC until everyone is done (Section IV.B).
        #
        # The earliest-in-time core is advanced a small burst of
        # records before re-electing, which amortises the selection
        # cost; a burst spans a few tens of cycles, far below any
        # contention timescale that matters.
        active = list(self.cores)
        remaining = sum(1 for core in self.cores if not core.done)
        burst = 1 if check_invariants_every else 8
        steps = 0
        timer = self.phase_timer
        wall_start = time.perf_counter()
        if timer is not None:
            timer.enter(PHASE_SIM_LOOP)
        while remaining:
            # Earliest-in-time election; the unrolled one- and two-core
            # forms pick the same core ``min`` would (first on ties)
            # without the key-function call or the ``cycles`` property.
            n_active = len(active)
            if n_active == 1:
                core = active[0]
            elif n_active == 2:
                core, other = active
                if other.timing.cycles < core.timing.cycles:
                    core = other
            else:
                core = min(active, key=_core_clock)
            executed, transitioned, exhausted = core.step_burst(
                burst, stop_when_done=(remaining == 1)
            )
            steps += executed
            if transitioned:
                remaining -= 1
            if exhausted:
                active.remove(core)
                if not active and remaining:
                    raise SimulationError(
                        "all traces exhausted before every quota was met"
                    )
            if (
                check_invariants_every
                and steps % check_invariants_every == 0
            ):
                self.hierarchy.check_invariants()
        if timer is not None:
            timer.exit()
        if check_invariants_every:
            self.hierarchy.check_invariants()
        if self.hierarchy.sanitizer is not None:
            self.hierarchy.sanitizer.final_check()
        result = self._collect()
        result.host = self._host_digest(
            time.perf_counter() - wall_start, steps
        )
        return result

    def _host_digest(self, wall_s: float, steps: int) -> Dict[str, object]:
        """Build the host-performance digest for this execution."""
        instructions = sum(core.instructions for core in self.cores)
        host: Dict[str, object] = {
            "wall_s": wall_s,
            "accesses": steps,
            "instructions": instructions,
            "instructions_per_s": instructions / wall_s if wall_s > 0 else 0.0,
            "accesses_per_s": steps / wall_s if wall_s > 0 else 0.0,
        }
        timer = self.phase_timer
        if timer is not None and timer.enabled:
            host["phases"] = timer.report()
        return host

    def _collect(self) -> SimResult:
        core_results: List[CoreResult] = []
        for core in self.cores:
            core_results.append(
                CoreResult(
                    core_id=core.core_id,
                    instructions=core.measured_instructions(),
                    cycles=core.cycles_at_quota or core.cycles,
                    ipc=core.ipc(),
                    stats=self.hierarchy.core_stats[core.core_id],
                )
            )
        max_cycles = max(result.cycles for result in core_results)
        intervals: Optional[IntervalSeries] = None
        if self._collector is not None:
            intervals = self._collector.finalize(max_cycles)
        return SimResult(
            config=self.config,
            cores=core_results,
            traffic=self.hierarchy.traffic.snapshot(),
            total_inclusion_victims=self.hierarchy.total_inclusion_victims,
            llc_stats=self.hierarchy.llc.stats.snapshot(),
            tla_name=self.hierarchy.tla.name,
            max_cycles=max_cycles,
            intervals=intervals,
        )


def _core_clock(core: SimulatedCore) -> float:
    return core.timing.cycles


def run_simulation(
    config: SimConfig,
    traces: Sequence[Iterator[TraceRecord]],
    check_invariants_every: int = 0,
    telemetry: Optional[TelemetryConfig] = None,
) -> SimResult:
    """One-shot convenience wrapper around :class:`CMPSimulator`."""
    simulator = CMPSimulator(config, traces, telemetry=telemetry)
    return simulator.run(check_invariants_every)
