"""Stream prefetcher with a fixed pool of stream detectors.

Classic design: each detector watches one region of the miss stream.
A detector *trains* when it sees misses to nearby, monotonically
advancing lines; once confirmed, it runs ``distance`` lines ahead of
the demand stream and issues ``degree`` prefetches per triggering
miss.  Detectors are allocated LRU when a miss matches no existing
stream.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import PrefetchConfig


class StreamDetector:
    """State of one tracked stream."""

    __slots__ = ("base_line", "last_line", "direction", "confidence", "next_prefetch")

    def __init__(self, line: int) -> None:
        self.base_line = line
        self.last_line = line
        self.direction = 0  # +1 ascending, -1 descending, 0 untrained
        self.confidence = 0
        self.next_prefetch = line

    def matches(self, line: int, window: int) -> bool:
        """Is ``line`` plausibly part of this stream?"""
        return abs(line - self.last_line) <= window

    def observe(self, line: int) -> bool:
        """Feed a miss; returns True once the stream is confirmed."""
        delta = line - self.last_line
        if delta == 0:
            return self.confidence >= 2
        direction = 1 if delta > 0 else -1
        if self.direction in (0, direction):
            self.direction = direction
            self.confidence += 1
        else:
            # Direction flip: retrain from here.
            self.direction = direction
            self.confidence = 1
        self.last_line = line
        if self.confidence == 2:
            self.next_prefetch = line + direction
        return self.confidence >= 2


class StreamPrefetcher:
    """16-detector stream prefetcher trained on L2 misses."""

    def __init__(self, config: PrefetchConfig, line_shift: int) -> None:
        self.config = config
        self.line_shift = line_shift
        # LRU-ordered pool: most recently used detector last.
        self._detectors: List[StreamDetector] = []
        self.prefetches_issued = 0
        self.streams_allocated = 0

    def train(self, address: int) -> List[int]:
        """Feed one L2-miss address; returns byte addresses to prefetch."""
        line = address >> self.line_shift
        detector = self._find(line)
        if detector is None:
            detector = self._allocate(line)
            return []
        # Move to MRU position.
        self._detectors.remove(detector)
        self._detectors.append(detector)
        if not detector.observe(line):
            return []
        prefetches: List[int] = []
        target_front = line + detector.direction * self.config.distance
        for _ in range(self.config.degree):
            candidate = detector.next_prefetch
            if detector.direction > 0 and candidate > target_front:
                break
            if detector.direction < 0 and candidate < target_front:
                break
            prefetches.append(candidate << self.line_shift)
            detector.next_prefetch = candidate + detector.direction
        self.prefetches_issued += len(prefetches)
        return prefetches

    def _find(self, line: int) -> Optional[StreamDetector]:
        window = self.config.train_window
        for detector in reversed(self._detectors):
            if detector.matches(line, window):
                return detector
        return None

    def _allocate(self, line: int) -> StreamDetector:
        detector = StreamDetector(line)
        self._detectors.append(detector)
        self.streams_allocated += 1
        if len(self._detectors) > self.config.num_streams:
            self._detectors.pop(0)  # evict the LRU stream
        return detector
