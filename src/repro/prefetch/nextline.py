"""Next-N-line prefetcher — the simplest hardware prefetcher.

On every training miss it prefetches the following ``degree`` lines.
Cheaper than the stream prefetcher (no detector state) but noisier:
it fires on random misses too, so it trades accuracy for coverage.
Included as a second prefetcher implementation behind the same
``train()`` interface; select it with
``PrefetchConfig(kind="nextline")``.
"""

from __future__ import annotations

from typing import List

from ..config import PrefetchConfig


class NextLinePrefetcher:
    """Prefetch the next ``degree`` sequential lines on every miss."""

    def __init__(self, config: PrefetchConfig, line_shift: int) -> None:
        self.config = config
        self.line_shift = line_shift
        self.prefetches_issued = 0
        self._last_line = -1

    def train(self, address: int) -> List[int]:
        """Feed one training miss; returns byte addresses to prefetch."""
        line = address >> self.line_shift
        if line == self._last_line:
            return []
        self._last_line = line
        prefetches = [
            (line + i) << self.line_shift
            for i in range(1, self.config.degree + 1)
        ]
        self.prefetches_issued += len(prefetches)
        return prefetches
