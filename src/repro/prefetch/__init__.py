"""Hardware prefetcher models.

The paper's baseline includes "a stream prefetcher that trains on L2
cache misses and prefetches lines into the L2 cache" with 16 stream
detectors (Section IV.A).  :class:`StreamPrefetcher` reproduces that
design; :class:`NextLinePrefetcher` is a simpler alternative behind
the same ``train()`` interface.  Use :func:`make_prefetcher` to build
one from a :class:`repro.config.PrefetchConfig`.
"""

from ..config import PrefetchConfig
from ..errors import ConfigurationError
from .nextline import NextLinePrefetcher
from .stream import StreamDetector, StreamPrefetcher


def make_prefetcher(config: PrefetchConfig, line_shift: int):
    """Instantiate the prefetcher selected by ``config.kind``."""
    if config.kind == "stream":
        return StreamPrefetcher(config, line_shift)
    if config.kind == "nextline":
        return NextLinePrefetcher(config, line_shift)
    raise ConfigurationError(f"unknown prefetcher kind {config.kind!r}")


__all__ = [
    "StreamDetector",
    "StreamPrefetcher",
    "NextLinePrefetcher",
    "make_prefetcher",
    "PrefetchConfig",
]
