"""``python -m repro.telemetry`` — validate exported telemetry artefacts.

``validate <dir>`` checks every artefact found in a trace output
directory against the checked-in schemas: ``events-*.jsonl`` files,
``trace.json``, ``run-manifest.json`` and ``service-metrics.json``.
``validate <file>`` checks a single saved ``GET /v1/metrics`` response
body.  Exits non-zero if any file fails, so CI can gate on exporter
drift.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from .log import get_logger
from .schema import (
    validate_chrome_trace,
    validate_eval_report,
    validate_events_jsonl,
    validate_run_manifest,
    validate_service_metrics,
    validate_spans_jsonl,
)

log = get_logger("repro.telemetry")


def validate_dir(out_dir: Path) -> int:
    """Validate all artefacts under ``out_dir``; returns the error count."""
    checked = 0
    failures = 0
    for path in sorted(out_dir.glob("events-*.jsonl")):
        checked += 1
        failures += _report(path, validate_events_jsonl(path))
    for path in sorted(out_dir.glob("spans-*.jsonl")):
        checked += 1
        failures += _report(path, validate_spans_jsonl(path))
    trace = out_dir / "trace.json"
    if trace.exists():
        checked += 1
        failures += _report(trace, validate_chrome_trace(trace))
    manifest = out_dir / "run-manifest.json"
    if manifest.exists():
        checked += 1
        failures += _report(manifest, validate_run_manifest(manifest))
    metrics = out_dir / "service-metrics.json"
    if metrics.exists():
        checked += 1
        failures += _report(metrics, validate_service_metrics(metrics))
    for path in sorted(out_dir.glob("eval-report*.json")):
        checked += 1
        failures += _report(path, validate_eval_report(path))
    if checked == 0:
        log.error("no_artifacts", dir=str(out_dir))
        return 1
    log.info("validated", dir=str(out_dir), files=checked, failed=failures)
    return failures


def _report(path: Path, errors: List[str]) -> int:
    if errors:
        log.error("schema_errors", file=str(path), errors=errors[:20])
        return 1
    log.info("schema_ok", file=str(path))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="validate exported telemetry artefacts",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser(
        "validate", help="schema-check a trace output directory"
    )
    check.add_argument(
        "dir",
        type=Path,
        help="directory holding artefacts, or a single /v1/metrics "
        "JSON file to check against SERVICE_METRICS_SCHEMA",
    )
    args = parser.parse_args(argv)
    if args.dir.is_file():
        # Single-file mode validates either saved document kind: an
        # eval report declares itself via "kind"; anything else is
        # checked as a /v1/metrics body (the historical behaviour).
        try:
            kind = json.loads(args.dir.read_text()).get("kind")
        except (ValueError, AttributeError, OSError):
            kind = None
        validate = (
            validate_eval_report
            if kind == "eval-report"
            else validate_service_metrics
        )
        return 1 if _report(args.dir, validate(args.dir)) else 0
    if not args.dir.is_dir():
        log.error("not_a_directory", dir=str(args.dir))
        return 1
    return 1 if validate_dir(args.dir) else 0


if __name__ == "__main__":
    sys.exit(main())
