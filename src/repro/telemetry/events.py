"""The simulation event taxonomy traced by :mod:`repro.telemetry`.

Every event names something the paper's evaluation reasons about in
*time*: when LLC misses cluster, when inclusion enforcement kills a
live core-cache line, how often the TLA policies exchange messages.
Events are deliberately flat strings (not an enum) so the disabled
tracer path never pays enum-member lookups and event logs stay
greppable; :data:`CATEGORIES` groups them into the coarse filter
classes the ``Tracer`` selects on.

The taxonomy (see DESIGN.md "Telemetry" for the full rationale):

=====================  ===========  ================================
event                  category     emitted when
=====================  ===========  ================================
``llc_miss``           ``llc``      a demand access misses the LLC
``llc_evict``          ``llc``      the LLC evicts a valid line
``victim_cache_rescue`` ``llc``     a victim-cache hit avoids memory
``back_invalidate``    ``inclusion`` inclusion removes a core copy
``inclusion_victim``   ``inclusion`` a back-invalidate hit a live line
``eci_invalidate``     ``tla``      ECI / modified-QBS early invalidate
``qbs_query``          ``tla``      QBS probes a core for residency
``qbs_promote``        ``tla``      QBS spares a resident victim
``tlh_hint``           ``tla``      TLH sends a locality hint
``mshr_stall``         ``mshr``     a miss waits for a free MSHR
=====================  ===========  ================================
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

EVENT_LLC_MISS = "llc_miss"
EVENT_LLC_EVICT = "llc_evict"
EVENT_VCACHE_RESCUE = "victim_cache_rescue"
EVENT_BACK_INVALIDATE = "back_invalidate"
EVENT_INCLUSION_VICTIM = "inclusion_victim"
EVENT_ECI_INVALIDATE = "eci_invalidate"
EVENT_QBS_QUERY = "qbs_query"
EVENT_QBS_PROMOTE = "qbs_promote"
EVENT_TLH_HINT = "tlh_hint"
EVENT_MSHR_STALL = "mshr_stall"

#: event name -> filter category ("llc" / "inclusion" / "tla" / "mshr").
CATEGORIES: Dict[str, str] = {
    EVENT_LLC_MISS: "llc",
    EVENT_LLC_EVICT: "llc",
    EVENT_VCACHE_RESCUE: "llc",
    EVENT_BACK_INVALIDATE: "inclusion",
    EVENT_INCLUSION_VICTIM: "inclusion",
    EVENT_ECI_INVALIDATE: "tla",
    EVENT_QBS_QUERY: "tla",
    EVENT_QBS_PROMOTE: "tla",
    EVENT_TLH_HINT: "tla",
    EVENT_MSHR_STALL: "mshr",
}

ALL_EVENTS: Tuple[str, ...] = tuple(CATEGORIES)
ALL_CATEGORIES: Tuple[str, ...] = ("llc", "inclusion", "tla", "mshr")

#: the message classes the paper's "<2 back-invalidate-class messages
#: per 1000 cycles" claim (Section V.B) sums over.
BACK_INVALIDATE_CLASS: Tuple[str, ...] = (
    EVENT_BACK_INVALIDATE,
    EVENT_ECI_INVALIDATE,
)


class TraceEvent(NamedTuple):
    """One recorded simulation event.

    ``cycle`` is simulated time (the issuing core's cycle count when
    the event fired), never host time.  ``core`` is -1 for events not
    attributable to one core (e.g. MSHR stalls of the shared file);
    ``line`` is the line address (-1 when not applicable).
    """

    cycle: float
    event: str
    core: int
    line: int
    extra: Optional[dict] = None

    def to_json_dict(self) -> dict:
        record = {
            "cycle": self.cycle,
            "event": self.event,
            "core": self.core,
            "line": self.line,
        }
        if self.extra:
            record["extra"] = self.extra
        return record
