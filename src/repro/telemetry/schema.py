"""Checked-in schemas for every telemetry artefact, plus a validator.

The schemas pin the on-disk contract of the exporters: JSONL event
logs, the Chrome-trace file (the subset of the Trace Event Format we
emit — ``ph: "X"`` complete events and ``ph: "M"`` metadata records),
and the enriched run manifest.  CI validates a traced smoke run
against them so exporter drift cannot ship silently.

The validator implements the small JSON-Schema subset the schemas use
(``type``, ``required``, ``properties``, ``items``, ``enum``,
``minimum``) rather than depending on the ``jsonschema`` package —
the toolchain constraint is that the repo runs on a bare
pytest+numpy image.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .events import ALL_EVENTS

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}

#: one line of an ``events-*.jsonl`` file.
EVENT_SCHEMA: Dict = {
    "type": "object",
    "required": ["cycle", "event", "core", "line"],
    "properties": {
        "cycle": {"type": "number", "minimum": 0},
        "event": {"type": "string", "enum": list(ALL_EVENTS)},
        "core": {"type": "integer", "minimum": -1},
        "line": {"type": "integer", "minimum": -1},
        "extra": {"type": "object"},
    },
}

#: the Chrome-trace (``chrome://tracing`` / Perfetto) export.
CHROME_TRACE_SCHEMA: Dict = {
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ph": {"type": "string", "enum": ["X", "M"]},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "args": {"type": "object"},
                },
            },
        },
    },
}

#: one line of a ``spans-*.jsonl`` export from :mod:`repro.obs`.
SPAN_SCHEMA: Dict = {
    "type": "object",
    "required": ["name", "trace_id", "span_id", "start", "end", "kind"],
    "properties": {
        "name": {"type": "string"},
        "trace_id": {"type": "string"},
        "span_id": {"type": "string"},
        "parent_id": {"type": "string"},
        "start": {"type": "number", "minimum": 0},
        "end": {"type": "number", "minimum": 0},
        "kind": {
            "type": "string",
            "enum": ["server", "internal", "queue", "worker", "phase"],
        },
        "attrs": {"type": "object"},
    },
}

#: the enriched per-sweep run manifest.
RUN_MANIFEST_SCHEMA: Dict = {
    "type": "object",
    "required": ["schema", "jobs"],
    "properties": {
        "schema": {"type": "integer", "minimum": 1},
        "settings": {"type": "object"},
        "trace_id": {"type": "string"},
        "jobs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["key", "label", "status", "cached"],
                "properties": {
                    "key": {"type": "string"},
                    "label": {"type": "string"},
                    "status": {"type": "string", "enum": ["done", "failed", "cached"]},
                    "cached": {"type": "boolean"},
                    "attempts": {"type": "integer", "minimum": 0},
                    "wall_s": {"type": "number", "minimum": 0},
                    "cpu_s": {"type": "number", "minimum": 0},
                    "error": {"type": "string"},
                    "events": {"type": "integer", "minimum": 0},
                    "host": {"type": "object"},
                    "trace_id": {"type": "string"},
                    "span_id": {"type": "string"},
                },
            },
        },
    },
}


#: the ``GET /v1/metrics`` body served by ``repro.service``.  Pinned
#: here, next to the other exporter contracts, so the service cannot
#: drift its observability payload without failing CI's schema gate.
SERVICE_METRICS_SCHEMA: Dict = {
    "type": "object",
    "required": [
        "schema",
        "uptime_s",
        "workers",
        "executor",
        "queue",
        "jobs",
        "sweeps",
        "tenants",
        "limits",
        "metrics",
        "host",
        "phases",
    ],
    "properties": {
        "schema": {"type": "integer", "minimum": 1},
        "uptime_s": {"type": "number", "minimum": 0},
        "workers": {"type": "integer", "minimum": 0},
        #: backend liveness (schema v3): the executor's own view of its
        #: capacity and health; bus backends add live_workers and
        #: spool_depth on top of the required core.
        "executor": {
            "type": "object",
            "required": [
                "backend",
                "workers",
                "busy",
                "respawns",
                "recycles",
                "lease_reclaims",
            ],
            "properties": {
                "backend": {"type": "string"},
                "workers": {"type": "integer", "minimum": 0},
                "busy": {"type": "integer", "minimum": 0},
                "respawns": {"type": "integer", "minimum": 0},
                "recycles": {"type": "integer", "minimum": 0},
                "lease_reclaims": {"type": "integer", "minimum": 0},
            },
        },
        "queue": {
            "type": "object",
            "required": ["depth", "running", "limit"],
            "properties": {
                "depth": {"type": "integer", "minimum": 0},
                "running": {"type": "integer", "minimum": 0},
                "limit": {"type": "integer", "minimum": 1},
            },
        },
        "jobs": {
            "type": "object",
            "required": [
                "sweeps_submitted",
                "sweeps_cancelled",
                "jobs_submitted",
                "jobs_deduped",
                "jobs_cached",
                "jobs_coalesced",
                "jobs_executed",
                "jobs_failed",
                "jobs_cancelled",
                "jobs_retried",
                "rejected_queue_full",
                "rejected_quota",
            ],
            "properties": {
                "sweeps_submitted": {"type": "integer", "minimum": 0},
                "sweeps_cancelled": {"type": "integer", "minimum": 0},
                "jobs_submitted": {"type": "integer", "minimum": 0},
                "jobs_deduped": {"type": "integer", "minimum": 0},
                "jobs_cached": {"type": "integer", "minimum": 0},
                "jobs_coalesced": {"type": "integer", "minimum": 0},
                "jobs_executed": {"type": "integer", "minimum": 0},
                "jobs_failed": {"type": "integer", "minimum": 0},
                "jobs_cancelled": {"type": "integer", "minimum": 0},
                "jobs_retried": {"type": "integer", "minimum": 0},
                "rejected_queue_full": {"type": "integer", "minimum": 0},
                "rejected_quota": {"type": "integer", "minimum": 0},
            },
        },
        "sweeps": {
            "type": "object",
            "required": ["total", "active"],
            "properties": {
                "total": {"type": "integer", "minimum": 0},
                "active": {"type": "integer", "minimum": 0},
            },
        },
        "tenants": {"type": "object"},
        "limits": {
            "type": "object",
            "required": ["tenant_jobs", "tenant_instructions"],
            "properties": {
                "tenant_jobs": {"type": "integer", "minimum": 0},
                "tenant_instructions": {"type": "integer", "minimum": 0},
            },
        },
        #: the labeled-registry dump (``repro.obs``); ``{}`` when the
        #: registry is disabled, so the body shape never varies.
        "metrics": {"type": "object"},
        "host": {"type": "object"},
        "phases": {"type": "object"},
        "requests": {"type": "object"},
    },
}


#: one (metric, slice) cell of an A/B report.  Nullable fields
#: (``geomean_ratio``, ``p_adjusted``, ``improved``) are required but
#: deliberately untyped — the validator subset has no union types, and
#: presence is the contract that matters.
_EVAL_CELL_SCHEMA: Dict = {
    "type": "object",
    "required": [
        "metric",
        "slice",
        "higher_is_better",
        "improved",
        "p_adjusted",
        "n",
        "mean_a",
        "mean_b",
        "mean_delta",
        "ci_low",
        "ci_high",
        "p_permutation",
        "p_sign",
        "geomean_ratio",
        "wins",
        "losses",
        "ties",
    ],
    "properties": {
        "metric": {"type": "string"},
        "slice": {"type": "string"},
        "higher_is_better": {"type": "boolean"},
        "n": {"type": "integer", "minimum": 1},
        "mean_a": {"type": "number"},
        "mean_b": {"type": "number"},
        "mean_delta": {"type": "number"},
        "ci_low": {"type": "number"},
        "ci_high": {"type": "number"},
        "p_permutation": {"type": "number", "minimum": 0},
        "p_sign": {"type": "number", "minimum": 0},
        "wins": {"type": "integer", "minimum": 0},
        "losses": {"type": "integer", "minimum": 0},
        "ties": {"type": "integer", "minimum": 0},
    },
}

#: the ``eval-report.json`` document written by ``repro.eval`` (and
#: served by ``GET /v1/sweeps/{id}/report``).  Pinned here so the
#: report format cannot drift without failing CI's schema gate, same
#: as every other exporter contract.
EVAL_REPORT_SCHEMA: Dict = {
    "type": "object",
    "required": [
        "schema",
        "kind",
        "baseline",
        "confidence",
        "resamples",
        "seed",
        "num_runs",
        "fingerprint",
        "metrics",
        "comparisons",
    ],
    "properties": {
        "schema": {"type": "integer", "minimum": 1},
        "kind": {"type": "string", "enum": ["eval-report"]},
        "baseline": {"type": "string"},
        "confidence": {"type": "number", "minimum": 0},
        "resamples": {"type": "integer", "minimum": 1},
        "seed": {"type": "integer", "minimum": 0},
        "num_runs": {"type": "integer", "minimum": 1},
        "fingerprint": {"type": "string"},
        "metrics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "unit", "higher_is_better", "description"],
                "properties": {
                    "name": {"type": "string"},
                    "unit": {"type": "string"},
                    "higher_is_better": {"type": "boolean"},
                    "description": {"type": "string"},
                },
            },
        },
        "comparisons": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "policy",
                    "num_pairs",
                    "unmatched",
                    "ambiguous",
                    "cells",
                    "overlay",
                ],
                "properties": {
                    "policy": {"type": "string"},
                    "num_pairs": {"type": "integer", "minimum": 1},
                    "unmatched": {"type": "array", "items": {"type": "string"}},
                    "ambiguous": {"type": "integer", "minimum": 0},
                    "cells": {"type": "array", "items": _EVAL_CELL_SCHEMA},
                },
            },
        },
    },
}


#: one line of a :class:`repro.orchestrate.SweepManifest` journal —
#: both the per-sweep outcome manifest and the bus journal (which adds
#: ``claimed``/``reclaimed`` lease records with a ``worker`` id).
SWEEP_MANIFEST_SCHEMA: Dict = {
    "type": "object",
    "required": ["key", "status"],
    "properties": {
        "key": {"type": "string"},
        "status": {
            "type": "string",
            "enum": ["done", "failed", "cancelled", "claimed", "reclaimed"],
        },
        "attempts": {"type": "integer", "minimum": 0},
        "error": {"type": "string"},
        "label": {"type": "string"},
        "category": {"type": "string"},
        "host": {"type": "object"},
        "trace_id": {"type": "string"},
        "worker": {"type": "string"},
    },
}


def check(value, schema: Dict, path: str = "$") -> List[str]:
    """Validate ``value`` against a schema; returns error strings."""
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        if isinstance(value, bool) and expected in ("integer", "number"):
            errors.append(f"{path}: expected {expected}, got boolean")
            return errors
        if not isinstance(value, python_type):
            errors.append(
                f"{path}: expected {expected}, got {type(value).__name__}"
            )
            return errors
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    if isinstance(value, dict):
        for required in schema.get("required", ()):
            if required not in value:
                errors.append(f"{path}: missing required key {required!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                errors.extend(check(value[key], subschema, f"{path}.{key}"))
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            errors.extend(check(item, schema["items"], f"{path}[{index}]"))
    return errors


def validate_events_jsonl(path: Union[str, Path]) -> List[str]:
    """Validate every line of a JSONL event log."""
    errors: List[str] = []
    for number, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {number}: invalid JSON ({exc})")
            continue
        errors.extend(check(record, EVENT_SCHEMA, f"line {number}"))
    return errors


def validate_spans_jsonl(path: Union[str, Path]) -> List[str]:
    """Validate every line of a span export, plus referential sanity:
    parent ids must resolve within the file and spans must not end
    before they start."""
    errors: List[str] = []
    span_ids = set()
    parents = []  # (line number, parent_id)
    for number, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {number}: invalid JSON ({exc})")
            continue
        errors.extend(check(record, SPAN_SCHEMA, f"line {number}"))
        if isinstance(record, dict):
            if isinstance(record.get("span_id"), str):
                span_ids.add(record["span_id"])
            if isinstance(record.get("parent_id"), str):
                parents.append((number, record["parent_id"]))
            start, end = record.get("start"), record.get("end")
            if (
                isinstance(start, (int, float))
                and isinstance(end, (int, float))
                and end < start
            ):
                errors.append(f"line {number}: span ends before it starts")
    for number, parent_id in parents:
        if parent_id not in span_ids:
            errors.append(
                f"line {number}: parent_id {parent_id!r} not in this file"
            )
    return errors


def validate_chrome_trace(path: Union[str, Path]) -> List[str]:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        return [f"invalid JSON: {exc}"]
    return check(data, CHROME_TRACE_SCHEMA)


def validate_run_manifest(path: Union[str, Path]) -> List[str]:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        return [f"invalid JSON: {exc}"]
    return check(data, RUN_MANIFEST_SCHEMA)


def validate_service_metrics(path: Union[str, Path]) -> List[str]:
    """Validate a saved ``GET /v1/metrics`` response body."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        return [f"invalid JSON: {exc}"]
    return check(data, SERVICE_METRICS_SCHEMA)


def validate_sweep_manifest(path: Union[str, Path]) -> List[str]:
    """Validate every line of a sweep manifest / bus journal.

    A trailing partial line (torn by a crash mid-append) is the
    journal's documented failure mode and is tolerated, matching
    :meth:`SweepManifest.statuses`; a malformed line anywhere *else*
    is corruption and is reported.
    """
    errors: List[str] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            if number == len(lines):
                continue  # torn tail from a crash mid-append
            errors.append(f"line {number}: invalid JSON ({exc})")
            continue
        errors.extend(check(record, SWEEP_MANIFEST_SCHEMA, f"line {number}"))
    return errors


def validate_eval_report(path: Union[str, Path]) -> List[str]:
    """Validate an ``eval-report.json`` A/B evaluation document."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        return [f"invalid JSON: {exc}"]
    return check(data, EVAL_REPORT_SCHEMA)
