"""Telemetry settings: one frozen config, environment-overridable.

``TelemetryConfig`` controls both kinds of time-resolved observability:

* *event tracing* (``enabled``) — the :class:`~repro.telemetry.Tracer`
  records typed :class:`~repro.telemetry.events.TraceEvent` objects,
  optionally category-filtered and sampled, and exporters write them
  as JSONL / Chrome-trace files under ``out_dir``;
* *interval collection* (``interval``) — the
  :class:`~repro.telemetry.IntervalCollector` folds traffic counters
  into fixed-cycle-window time series exposed on ``SimResult``.

Everything defaults to off: a default-constructed config is inert and
the simulator takes the exact pre-telemetry fast path (asserted by the
golden regression tests).

Environment knobs (mirrored by the ``--trace*`` CLI flags of
``repro.experiments``):

``REPRO_TRACE=1``            enable event tracing
``REPRO_TRACE_OUT=dir``      export directory (default ``traces``)
``REPRO_TRACE_SAMPLE=n``     keep 1 in n eligible events
``REPRO_TRACE_INTERVAL=c``   interval window in cycles (0 = default)
``REPRO_TRACE_CATEGORIES=a,b``  only trace these event categories
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError
from .events import ALL_CATEGORIES

#: window used for interval series when tracing is on and no explicit
#: ``interval`` was configured; small enough to resolve thrash bursts
#: on scaled machines, large enough that window counts are not noise.
DEFAULT_INTERVAL = 5_000

#: default cap on recorded events per simulation; overflowing events
#: are counted (``Tracer.dropped``) but not stored.
DEFAULT_MAX_EVENTS = 1_000_000


@dataclass(frozen=True)
class TelemetryConfig:
    """What to trace, how densely, and where exports land."""

    enabled: bool = False
    out_dir: str = "traces"
    sample: int = 1
    interval: int = 0
    categories: Tuple[str, ...] = ()
    max_events: int = DEFAULT_MAX_EVENTS

    def __post_init__(self) -> None:
        if self.sample <= 0:
            raise ConfigurationError("trace sample must be positive (1 = all)")
        if self.interval < 0:
            raise ConfigurationError("trace interval must be non-negative")
        if self.max_events <= 0:
            raise ConfigurationError("max_events must be positive")
        unknown = set(self.categories) - set(ALL_CATEGORIES)
        if unknown:
            raise ConfigurationError(
                f"unknown trace categories: {sorted(unknown)}; "
                f"known: {ALL_CATEGORIES}"
            )

    @property
    def active(self) -> bool:
        """Does this config ask for any telemetry work at all?"""
        return self.enabled or self.interval > 0

    @property
    def effective_interval(self) -> int:
        """The interval window to use: explicit, or a default when tracing."""
        if self.interval:
            return self.interval
        return DEFAULT_INTERVAL if self.enabled else 0

    @classmethod
    def from_env(cls) -> "TelemetryConfig":
        env = os.environ
        categories = tuple(
            token
            for token in env.get("REPRO_TRACE_CATEGORIES", "").split(",")
            if token
        )
        return cls(
            enabled=env.get("REPRO_TRACE", "") not in ("", "0"),
            out_dir=env.get("REPRO_TRACE_OUT", "traces"),
            sample=int(env.get("REPRO_TRACE_SAMPLE", 1)),
            interval=int(env.get("REPRO_TRACE_INTERVAL", 0)),
            categories=categories,
        )
