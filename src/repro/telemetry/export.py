"""Exporters: JSONL event logs, Chrome traces, enriched run manifests.

Three artefacts, all schema-pinned by :mod:`repro.telemetry.schema`:

* ``events-<key>.jsonl`` — one :class:`~repro.telemetry.events.
  TraceEvent` per line, written by whichever process executed the job
  (worker processes write their own files; names are job-key-unique so
  there is never a concurrent writer).
* ``trace.json`` — a Chrome-trace file loadable in ``chrome://tracing``
  or https://ui.perfetto.dev.  Process 0 shows the sweep in *wall
  time*: one complete-event span per executed job, laid out in
  non-overlapping lanes.  Each traced job additionally appears as its
  own process in *simulated time* (1 cycle rendered as 1 µs) with one
  thread per core carrying its ``warmup`` / ``measure`` phase spans.
* ``run-manifest.json`` — the run-wide structured record: per job its
  key, label, terminal status, attempt count, wall/CPU seconds and
  cache-hit provenance.

Wall times are ``time.perf_counter`` offsets from the sweep start —
pure elapsed time, never the host clock (lint rule CS3).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..obs.tracing import new_span_id, new_trace_id
from .config import TelemetryConfig
from .events import TraceEvent

#: ``run-manifest.json`` schema version (see RUN_MANIFEST_SCHEMA).
#: v2 adds the run-wide ``trace_id`` and per-job ``trace_id``/``span_id``
#: join keys (repro.obs request tracing).
MANIFEST_SCHEMA_VERSION = 2

#: Chrome-trace pid of the wall-time sweep lane group.
SWEEP_PID = 0
#: first pid used for per-job simulated-time processes.
JOB_PID_BASE = 1000


def write_events_jsonl(
    path: Union[str, Path], events: Iterable[TraceEvent]
) -> Path:
    """Write one JSON object per event; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_json_dict(), sort_keys=True))
            handle.write("\n")
    return path


def _assign_lanes(spans: List[dict]) -> None:
    """Greedy non-overlap lane assignment (sets ``span['lane']``)."""
    lane_ends: List[float] = []
    for span in sorted(spans, key=lambda item: item["start"]):
        for lane, end in enumerate(lane_ends):
            if span["start"] >= end:
                span["lane"] = lane
                lane_ends[lane] = span["end"]
                break
        else:
            span["lane"] = len(lane_ends)
            lane_ends.append(span["end"])


def build_chrome_trace(jobs: List[dict]) -> Dict:
    """Build the Chrome-trace dict from :class:`RunTelemetry` job rows."""
    trace_events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SWEEP_PID,
            "tid": 0,
            "args": {"name": "sweep (wall time)"},
        }
    ]
    executed = [job for job in jobs if not job["cached"] and job.get("end")]
    _assign_lanes(executed)
    for job in executed:
        trace_events.append(
            {
                "name": job["label"],
                "cat": "job",
                "ph": "X",
                "ts": job["start"] * 1e6,
                "dur": max(0.0, job["end"] - job["start"]) * 1e6,
                "pid": SWEEP_PID,
                "tid": job["lane"],
                "args": {
                    "key": job["key"],
                    "status": job["status"],
                    "attempts": job["attempts"],
                },
            }
        )
        # Host phase sub-spans (repro.perf.PhaseTimer): exclusive
        # per-phase totals laid out back to back inside the job span.
        # They sum to (almost exactly) the job's wall time, so Chrome
        # tracing nests them under the job as a one-level flame row;
        # only their widths are meaningful, not their order.
        host_phases = (job.get("host") or {}).get("phases") or {}
        offset = job["start"]
        for name, digest in sorted(
            host_phases.items(), key=lambda kv: -float(kv[1].get("s", 0.0))
        ):
            seconds = float(digest.get("s", 0.0))
            if seconds <= 0.0:
                continue
            trace_events.append(
                {
                    "name": name,
                    "cat": "host_phase",
                    "ph": "X",
                    "ts": offset * 1e6,
                    "dur": seconds * 1e6,
                    "pid": SWEEP_PID,
                    "tid": job["lane"],
                    "args": {"count": int(digest.get("count", 0))},
                }
            )
            offset += seconds
    pid = JOB_PID_BASE
    for job in executed:
        phases = (job.get("telemetry") or {}).get("core_phases") or []
        if not phases:
            continue
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{job['label']} (simulated cycles)"},
            }
        )
        for core in phases:
            tid = int(core.get("core", 0))
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"core {tid}"},
                }
            )
            warmup_end = float(core.get("warmup_cycles", 0.0))
            quota_end = float(core.get("quota_cycles", warmup_end))
            if warmup_end > 0:
                trace_events.append(
                    {
                        "name": "warmup",
                        "cat": "phase",
                        "ph": "X",
                        "ts": 0.0,
                        "dur": warmup_end,
                        "pid": pid,
                        "tid": tid,
                        "args": {},
                    }
                )
            trace_events.append(
                {
                    "name": "measure",
                    "cat": "phase",
                    "ph": "X",
                    "ts": warmup_end,
                    "dur": max(0.0, quota_end - warmup_end),
                    "pid": pid,
                    "tid": tid,
                    "args": {},
                }
            )
        pid += 1
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry",
            "note": "pid 0 is wall time; job processes are simulated "
            "cycles rendered as microseconds",
        },
    }


class RunTelemetry:
    """Run-wide telemetry for one sweep: job provenance, spans, exports.

    The orchestrator (and the serial :class:`repro.experiments.Runner`
    path) report every job outcome here; :meth:`write` then produces
    the Chrome trace and the enriched run manifest in one place, so
    parallel and serial sweeps export identically-shaped artefacts.
    """

    def __init__(
        self, config: TelemetryConfig, trace_id: Optional[str] = None
    ) -> None:
        self.config = config
        self.out_dir = Path(config.out_dir)
        self.jobs: List[dict] = []
        self._origin = time.perf_counter()
        # every CLI sweep is one trace; callers that arrived with a
        # trace (the service path) pass theirs so artefacts join up.
        self.trace_id = trace_id if trace_id is not None else new_trace_id()

    def now(self) -> float:
        """Seconds since this sweep's telemetry started (wall span)."""
        return time.perf_counter() - self._origin

    # -- provenance hooks (orchestrator / runner) ---------------------------
    def note_cached(self, key: str, label: str) -> None:
        self.jobs.append(
            {
                "key": key,
                "label": label,
                "status": "cached",
                "cached": True,
                "attempts": 0,
            }
        )

    def note_executed(
        self,
        key: str,
        label: str,
        status: str,
        attempts: int,
        start: float,
        end: float,
        telemetry: Optional[Dict] = None,
        error: Optional[str] = None,
        host: Optional[Dict] = None,
    ) -> None:
        row = {
            "key": key,
            "label": label,
            "status": status,
            "cached": False,
            "attempts": attempts,
            "start": start,
            "end": end,
            "wall_s": max(0.0, end - start),
            "span_id": new_span_id(),
        }
        if telemetry:
            row["telemetry"] = telemetry
            if "cpu_s" in telemetry:
                row["cpu_s"] = float(telemetry["cpu_s"])
            if "recorded" in telemetry:
                row["events"] = int(telemetry["recorded"])
        if host:
            # host-performance digest from repro.perf (wall seconds,
            # simulated-work rates, optional phase report).
            row["host"] = host
            if "cpu_s" not in row and "cpu_s" in host:
                row["cpu_s"] = float(host["cpu_s"])
        if error is not None:
            row["error"] = error
        self.jobs.append(row)

    # -- artefact writers ----------------------------------------------------
    def manifest_dict(self, settings: Optional[Dict] = None) -> Dict:
        jobs = []
        for job in self.jobs:
            row = {
                "key": job["key"],
                "label": job["label"],
                "status": job["status"],
                "cached": job["cached"],
                "attempts": job["attempts"],
            }
            for key in ("wall_s", "cpu_s", "events", "error", "host", "span_id"):
                if key in job:
                    row[key] = job[key]
            if not job["cached"]:
                row["trace_id"] = self.trace_id
            jobs.append(row)
        manifest = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "jobs": jobs,
            "trace_id": self.trace_id,
        }
        if settings is not None:
            manifest["settings"] = settings
        return manifest

    def write(self, settings: Optional[Dict] = None) -> Dict[str, Path]:
        """Write ``trace.json`` + ``run-manifest.json``; returns the paths."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        trace_path = self.out_dir / "trace.json"
        trace_path.write_text(
            json.dumps(build_chrome_trace(self.jobs)), encoding="utf-8"
        )
        manifest_path = self.out_dir / "run-manifest.json"
        manifest_path.write_text(
            json.dumps(self.manifest_dict(settings), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        return {"trace": trace_path, "manifest": manifest_path}
