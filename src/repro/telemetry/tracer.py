"""The event tracer: typed simulation events, nearly free when off.

Two layers keep the disabled cost at (almost) zero:

* hook sites in the hierarchy/CPU hold the tracer in a local and guard
  with ``if tracer is not None`` — a disabled simulation never even
  calls into this module (``BaseHierarchy.tracer`` stays ``None``);
* a constructed-but-disabled ``Tracer`` (``enabled=False``) returns
  from :meth:`Tracer.emit` on the first branch, so code handed a
  tracer object unconditionally still pays only one attribute test.

Every *eligible* event is always counted in :attr:`Tracer.counts`
(exact aggregates survive sampling); category filtering and 1-in-N
sampling only thin the *recorded* event list.  Sampling is a
deterministic counter stride — no RNG, so traced runs reproduce
byte-for-byte (lint rule CS2 and the determinism tests rely on this).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from .config import DEFAULT_MAX_EVENTS
from .events import CATEGORIES, TraceEvent


class Tracer:
    """Records typed :class:`TraceEvent` objects during one simulation."""

    __slots__ = (
        "enabled",
        "events",
        "counts",
        "dropped",
        "sampled_out",
        "_categories",
        "_sample",
        "_eligible",
        "_max_events",
    )

    def __init__(
        self,
        enabled: bool = True,
        categories: Iterable[str] = (),
        sample: int = 1,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.enabled = enabled
        #: recorded events, in emission order.
        self.events: List[TraceEvent] = []
        #: exact per-event-type totals, independent of filter/sampling.
        self.counts: Dict[str, int] = {}
        #: events lost to the ``max_events`` cap.
        self.dropped = 0
        #: events skipped by the 1-in-N sampler (still counted).
        self.sampled_out = 0
        self._categories: Optional[FrozenSet[str]] = (
            frozenset(categories) or None
        )
        self._sample = max(1, int(sample))
        self._eligible = 0
        self._max_events = max_events

    def emit(
        self,
        cycle: float,
        event: str,
        core: int = -1,
        line: int = -1,
        extra: Optional[dict] = None,
    ) -> None:
        """Record one event (hook sites sit on cold simulation paths)."""
        if not self.enabled:
            return
        counts = self.counts
        counts[event] = counts.get(event, 0) + 1
        if self._categories is not None and CATEGORIES[event] not in self._categories:
            return
        self._eligible += 1
        if self._sample > 1 and (self._eligible - 1) % self._sample:
            self.sampled_out += 1
            return
        if len(self.events) >= self._max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(cycle, event, core, line, extra))

    def count(self, event: str) -> int:
        """Exact number of times ``event`` fired (sampling-independent)."""
        return self.counts.get(event, 0)

    def total_events(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> Dict[str, object]:
        """Compact, picklable digest (shipped over orchestrator pipes)."""
        return {
            "counts": dict(self.counts),
            "recorded": len(self.events),
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (
            f"<Tracer {state} recorded={len(self.events)} "
            f"total={self.total_events()}>"
        )
