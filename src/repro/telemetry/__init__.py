"""Observability layer: event tracing, interval series, run telemetry.

Four cooperating pieces, all zero-cost when telemetry is off:

* :class:`Tracer` — typed simulation events (LLC misses/evictions,
  back-invalidates, ECI early-invalidates, QBS queries/promotions,
  TLH hints, MSHR stalls) emitted from hook sites in the hierarchy
  and CPU models.
* :class:`IntervalCollector` / :class:`IntervalSeries` — fixed
  cycle-window time series of traffic and inclusion activity, exact
  by construction (window sums equal the aggregate counters), used to
  compute the paper's per-1000-cycle traffic claim.
* exporters (:mod:`repro.telemetry.export`) — JSONL event logs,
  Chrome-trace files for ``chrome://tracing`` / Perfetto, and the
  enriched run manifest; :mod:`repro.telemetry.schema` pins their
  formats and ``python -m repro.telemetry validate`` checks them.
* :class:`StructuredLogger` — JSON-per-line diagnostics on stderr
  for CLIs and the orchestrator (``REPRO_LOG_LEVEL``).
"""

from .config import DEFAULT_INTERVAL, DEFAULT_MAX_EVENTS, TelemetryConfig
from .events import (
    ALL_CATEGORIES,
    ALL_EVENTS,
    BACK_INVALIDATE_CLASS,
    CATEGORIES,
    EVENT_BACK_INVALIDATE,
    EVENT_ECI_INVALIDATE,
    EVENT_INCLUSION_VICTIM,
    EVENT_LLC_EVICT,
    EVENT_LLC_MISS,
    EVENT_MSHR_STALL,
    EVENT_QBS_PROMOTE,
    EVENT_QBS_QUERY,
    EVENT_TLH_HINT,
    EVENT_VCACHE_RESCUE,
    TraceEvent,
)
from .export import RunTelemetry, build_chrome_trace, write_events_jsonl
from .intervals import (
    KEY_INCLUSION_VICTIMS,
    KEY_LLC_MISSES,
    IntervalCollector,
    IntervalSeries,
)
from .log import StructuredLogger, get_logger, level_from_env
from .schema import (
    CHROME_TRACE_SCHEMA,
    EVAL_REPORT_SCHEMA,
    EVENT_SCHEMA,
    RUN_MANIFEST_SCHEMA,
    SERVICE_METRICS_SCHEMA,
    SPAN_SCHEMA,
    validate_chrome_trace,
    validate_eval_report,
    validate_events_jsonl,
    validate_run_manifest,
    validate_service_metrics,
    validate_spans_jsonl,
)
from .tracer import Tracer

__all__ = [
    "ALL_CATEGORIES",
    "ALL_EVENTS",
    "BACK_INVALIDATE_CLASS",
    "CATEGORIES",
    "CHROME_TRACE_SCHEMA",
    "DEFAULT_INTERVAL",
    "DEFAULT_MAX_EVENTS",
    "EVENT_BACK_INVALIDATE",
    "EVENT_ECI_INVALIDATE",
    "EVENT_INCLUSION_VICTIM",
    "EVENT_LLC_EVICT",
    "EVENT_LLC_MISS",
    "EVENT_MSHR_STALL",
    "EVAL_REPORT_SCHEMA",
    "EVENT_QBS_PROMOTE",
    "EVENT_QBS_QUERY",
    "EVENT_SCHEMA",
    "EVENT_TLH_HINT",
    "EVENT_VCACHE_RESCUE",
    "IntervalCollector",
    "IntervalSeries",
    "KEY_INCLUSION_VICTIMS",
    "KEY_LLC_MISSES",
    "RUN_MANIFEST_SCHEMA",
    "RunTelemetry",
    "SERVICE_METRICS_SCHEMA",
    "SPAN_SCHEMA",
    "StructuredLogger",
    "TelemetryConfig",
    "TraceEvent",
    "Tracer",
    "build_chrome_trace",
    "get_logger",
    "level_from_env",
    "validate_chrome_trace",
    "validate_eval_report",
    "validate_events_jsonl",
    "validate_run_manifest",
    "validate_service_metrics",
    "validate_spans_jsonl",
    "write_events_jsonl",
]
