"""Fixed-cycle-window time series of traffic and inclusion activity.

The paper's traffic argument is a *rate* claim — ECI/QBS add fewer
than 2 back-invalidate-class messages per 1000 cycles (Section V.B) —
and its performance argument is *temporal* — inclusion victims are hot
lines killed while still live.  End-of-run totals can only
approximate the first and cannot show the second.  The
:class:`IntervalCollector` closes that gap: it snapshots the
hierarchy's counters every ``window`` simulated cycles and stores the
per-window deltas, yielding exact time series whose sums equal the
run's aggregate counters (so window-based rates and total-based rates
are the same numbers, just resolved in time).

The collector is driven by the simulator's step hook (it never polls
host time) and costs nothing when no telemetry is configured — the
hook is only installed for telemetry-enabled runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ConfigurationError
from .events import BACK_INVALIDATE_CLASS

#: non-traffic counter keys tracked alongside the message types.
KEY_INCLUSION_VICTIMS = "inclusion_victims"
KEY_LLC_MISSES = "llc_misses"


@dataclass
class IntervalSeries:
    """Per-window counter deltas for one finished simulation.

    ``spans[i]`` is the cycle length of window ``i`` (every window is
    ``window`` cycles except a partial final one); ``counts[key][i]``
    is how many of ``key`` happened inside it.  Window sums equal the
    run's aggregate counters by construction, so
    :meth:`mean_rate_per_kcycle` reproduces total-based rate metrics
    exactly while the per-window series resolves *when* the messages
    clustered.
    """

    window: int
    spans: List[float] = field(default_factory=list)
    counts: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def num_windows(self) -> int:
        return len(self.spans)

    @property
    def total_cycles(self) -> float:
        return sum(self.spans)

    def series(self, key: str) -> List[int]:
        """Raw per-window counts for one counter key."""
        return self.counts.get(key, [0] * self.num_windows)

    def total(self, key: str) -> int:
        return sum(self.series(key))

    def rate_per_kcycle(self, key: str) -> List[float]:
        """Per-window rate: counts per 1000 cycles, one value per window."""
        return [
            1000.0 * count / span if span > 0 else 0.0
            for count, span in zip(self.series(key), self.spans)
        ]

    def mean_rate_per_kcycle(self, key: str) -> float:
        """Run-wide rate from the windows (== the total-based rate)."""
        cycles = self.total_cycles
        if cycles <= 0:
            return 0.0
        return 1000.0 * self.total(key) / cycles

    # -- the paper's Section V.B metric ------------------------------------
    def back_invalidate_class_series(self) -> List[int]:
        """Per-window back-invalidate-class messages (BI + ECI)."""
        merged = [0] * self.num_windows
        for key in BACK_INVALIDATE_CLASS:
            for index, count in enumerate(self.series(key)):
                merged[index] += count
        return merged

    def back_invalidate_class_per_kcycle(self) -> List[float]:
        """Per-window back-invalidate-class messages per 1000 cycles."""
        return [
            1000.0 * count / span if span > 0 else 0.0
            for count, span in zip(self.back_invalidate_class_series(), self.spans)
        ]

    def mean_back_invalidate_class_per_kcycle(self) -> float:
        cycles = self.total_cycles
        if cycles <= 0:
            return 0.0
        return 1000.0 * sum(self.back_invalidate_class_series()) / cycles

    # -- (de)serialisation for RunSummary / the disk cache ------------------
    def to_dict(self) -> Dict:
        return {
            "window": self.window,
            "spans": list(self.spans),
            "counts": {key: list(values) for key, values in self.counts.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "IntervalSeries":
        return cls(
            window=int(data["window"]),
            spans=[float(span) for span in data.get("spans", [])],
            counts={
                key: [int(v) for v in values]
                for key, values in data.get("counts", {}).items()
            },
        )


class IntervalCollector:
    """Folds a hierarchy's counters into fixed-window deltas.

    Driven by :meth:`tick` with the issuing core's cycle count on every
    simulation step.  Crossing a window boundary snapshots the
    hierarchy's cumulative counters and attributes the delta to the
    window that just closed.  The global clock is only approximately
    monotone (cores interleave in small bursts), so a slightly stale
    tick simply lands its activity in the currently open window —
    window sums stay exact regardless.
    """

    def __init__(self, hierarchy, window: int) -> None:
        if window <= 0:
            raise ConfigurationError("interval window must be positive")
        self.hierarchy = hierarchy
        self.window = window
        self._window_end = float(window)
        self._spans: List[float] = []
        self._last_snapshot = self._snapshot()
        self._counts: Dict[str, List[int]] = {
            key: [] for key in self._last_snapshot
        }

    def _snapshot(self) -> Dict[str, int]:
        hierarchy = self.hierarchy
        snap = hierarchy.traffic.snapshot()
        snap[KEY_INCLUSION_VICTIMS] = hierarchy.total_inclusion_victims
        snap[KEY_LLC_MISSES] = hierarchy.llc.stats.misses
        return snap

    def tick(self, cycle: float) -> None:
        """Advance to ``cycle``, closing any windows it passed."""
        while cycle >= self._window_end:
            self._close(self._window_end)

    def _close(self, boundary: float) -> None:
        snap = self._snapshot()
        last = self._last_snapshot
        for key, value in snap.items():
            self._counts[key].append(value - last[key])
        self._last_snapshot = snap
        self._spans.append(float(self.window))
        self._window_end = boundary + self.window

    def finalize(self, final_cycle: float) -> IntervalSeries:
        """Close the trailing partial window and return the series.

        ``final_cycle`` is the run's end-of-measurement clock (the
        slowest core's quota cycle); the final window spans whatever
        remains of it, so ``IntervalSeries.total_cycles`` equals the
        cycle count aggregate rates are computed over.
        """
        self.tick(final_cycle)
        start = self._window_end - self.window
        if final_cycle > start or not self._spans:
            snap = self._snapshot()
            last = self._last_snapshot
            for key, value in snap.items():
                self._counts[key].append(value - last[key])
            self._last_snapshot = snap
            self._spans.append(max(0.0, final_cycle - start))
        else:
            # Nothing past the last closed boundary: fold any counter
            # residue into the final closed window so sums stay exact.
            snap = self._snapshot()
            last = self._last_snapshot
            for key, value in snap.items():
                if value != last[key]:
                    self._counts[key][-1] += value - last[key]
            self._last_snapshot = snap
        return IntervalSeries(
            window=self.window,
            spans=self._spans,
            counts=self._counts,
        )
