"""Structured diagnostics logging for CLIs and the orchestrator.

One JSON object per line on stderr, so diagnostics are machine-parsable
(and trivially filterable with ``jq``) while experiment *output* stays
on stdout.  No timestamps: host wall-clock reads are banned repo-wide
(lint rule CS3) and diagnostic lines must not make otherwise
deterministic runs diff differently.

The minimum emitted level comes from ``REPRO_LOG_LEVEL``
(``debug`` / ``info`` / ``warning`` / ``error``; default ``info``);
unknown values fall back to the default rather than crashing a CLI.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Optional, TextIO

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}
DEFAULT_LEVEL = "info"


def level_from_env() -> int:
    """Resolve ``REPRO_LOG_LEVEL`` to a numeric threshold."""
    name = os.environ.get("REPRO_LOG_LEVEL", DEFAULT_LEVEL).strip().lower()
    return LEVELS.get(name, LEVELS[DEFAULT_LEVEL])


class StructuredLogger:
    """Writes one sorted-key JSON object per diagnostic line."""

    def __init__(
        self,
        name: str,
        stream: Optional[TextIO] = None,
        level: Optional[int] = None,
    ) -> None:
        self.name = name
        # None means "whatever sys.stderr is at write time": module-level
        # loggers outlive stderr redirections (pytest capture, CLI
        # wrappers), so the default must not be frozen at import.
        self._stream = stream
        self.level = level if level is not None else level_from_env()
        self._bound: Dict[str, object] = {}

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def bind(self, **fields) -> "StructuredLogger":
        """A child logger that stamps ``fields`` on every line.

        This is how request context (``trace_id``, ``tenant``,
        ``sweep_id``) rides along without threading it through every
        call site; None values are dropped so unbound context costs
        nothing.  The child shares the parent's stream and level.
        """
        child = StructuredLogger(self.name, stream=self._stream, level=self.level)
        child._bound = dict(self._bound)
        child._bound.update(
            (key, value) for key, value in fields.items() if value is not None
        )
        return child

    def log(self, level: str, event: str, **fields) -> None:
        if LEVELS[level] < self.level:
            return
        record = {"level": level, "logger": self.name, "event": event}
        record.update(self._bound)
        # absent context (e.g. trace_id on an untraced run) is dropped,
        # not serialised as null — lines stay identical to pre-tracing.
        record.update(
            (key, value) for key, value in fields.items() if value is not None
        )
        stream = self.stream
        stream.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        stream.flush()

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


_LOGGERS: Dict[str, StructuredLogger] = {}


def get_logger(name: str) -> StructuredLogger:
    """Shared per-name logger (level resolved at first use)."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = StructuredLogger(name)
    return logger
