"""Report assembly: pairing + stats + slices → markdown and JSON.

A report is a pure function of its inputs — the cached run summaries,
the baseline choice, and the (confidence, resamples, seed) knobs — so
two invocations over the same cache produce byte-identical artefacts.
That is the regeneratability contract: reports are never edited, only
regenerated, and a diff between two report files always means the
*data* changed.  Three rules make it hold:

* every float is serialised by :func:`json.dumps` / fixed-precision
  formatting (no locale, no wall-clock timestamps anywhere);
* JSON keys are sorted and the markdown table order is the sorted
  slice/policy order;
* all resampling seeds derive from the configured base seed through
  :func:`~repro.eval.stats.derive_seed`, independent of process state.

Instead of a timestamp, the header carries a *fingerprint*: the sha1
over the sorted job keys that fed the report, which identifies the
input data exactly and still never varies across regenerations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import EvalError
from .pairing import (
    BASELINE_POLICY,
    Pairing,
    RunRecord,
    available_policies,
    pair_records,
)
from .slicing import METRICS, SliceCell, build_cells, interval_overlay
from .stats import DEFAULT_CONFIDENCE, DEFAULT_RESAMPLES, DEFAULT_SEED

#: bump when the report JSON layout changes shape.
REPORT_SCHEMA_VERSION = 1

#: adjusted-p threshold the verdict column is annotated against.
SIGNIFICANCE_LEVEL = 0.05


def report_fingerprint(records: Sequence[RunRecord]) -> str:
    """sha1 over the sorted job keys — identifies the input data set."""
    digest = hashlib.sha1()
    for key in sorted(record.key for record in records):
        digest.update(key.encode())
    return digest.hexdigest()


def _comparison_dict(pairing: Pairing, cells: List[SliceCell]) -> Dict:
    return {
        "policy": pairing.policy_b,
        "num_pairs": len(pairing.pairs),
        "unmatched": sorted(pairing.unmatched),
        "ambiguous": pairing.ambiguous,
        "cells": [cell.to_dict() for cell in cells],
        "overlay": interval_overlay(pairing.pairs),
    }


def build_report(
    records: Sequence[RunRecord],
    baseline: str = BASELINE_POLICY,
    policies: Optional[Sequence[str]] = None,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = DEFAULT_SEED,
) -> Dict:
    """The full A/B report document over ``records``.

    One comparison per candidate policy against ``baseline``; Holm
    correction runs over the permutation p-values of *every* cell of
    *every* comparison, because that whole family is what one report
    invites the reader to scan for significance.
    """
    if not records:
        raise EvalError("no cached runs to evaluate")
    seen = available_policies(records)
    if baseline not in seen:
        raise EvalError(
            f"baseline policy {baseline!r} has no cached runs; "
            f"available: {', '.join(seen)}"
        )
    if policies is None:
        policies = [policy for policy in seen if policy != baseline]
    if not policies:
        raise EvalError("no candidate policy to compare against the baseline")
    comparisons: List[Tuple[Pairing, List[SliceCell]]] = []
    for policy in policies:
        if policy not in seen:
            raise EvalError(
                f"policy {policy!r} has no cached runs; "
                f"available: {', '.join(seen)}"
            )
        pairing = pair_records(records, baseline, policy)
        if not pairing.pairs:
            raise EvalError(
                f"no workload is cached under both {baseline!r} and {policy!r}"
            )
        cells = build_cells(
            pairing.pairs,
            METRICS,
            confidence=confidence,
            resamples=resamples,
            seed=seed,
        )
        comparisons.append((pairing, cells))
    # Holm over the whole family, then scatter the adjusted values
    # back into their cells (order within the flat list is stable).
    flat = [cell for _, cells in comparisons for cell in cells]
    raw = [cell.stats.p_permutation for cell in flat]
    from .stats import holm_correction

    adjusted = holm_correction(raw)
    index = 0
    corrected: List[Tuple[Pairing, List[SliceCell]]] = []
    for pairing, cells in comparisons:
        fixed = []
        for cell in cells:
            fixed.append(replace(cell, p_adjusted=adjusted[index]))
            index += 1
        corrected.append((pairing, fixed))
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "kind": "eval-report",
        "baseline": baseline,
        "confidence": confidence,
        "resamples": resamples,
        "seed": seed,
        "num_runs": len(records),
        "fingerprint": report_fingerprint(records),
        "metrics": [
            {
                "name": metric.name,
                "unit": metric.unit,
                "higher_is_better": metric.higher_is_better,
                "description": metric.description,
            }
            for metric in METRICS
        ],
        "comparisons": [
            _comparison_dict(pairing, cells) for pairing, cells in corrected
        ],
    }


# -- rendering -------------------------------------------------------------

def _fmt(value: Optional[float], digits: int = 4) -> str:
    if value is None:
        return "—"
    return f"{value:.{digits}f}"


def _fmt_p(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value < 0.0001:
        return "<0.0001"
    return f"{value:.4f}"


def _verdict(cell: Dict) -> str:
    improved = cell["improved"]
    if improved is None:
        return "~"
    arrow = "better" if improved else "worse"
    significant = (
        cell["p_adjusted"] is not None
        and cell["p_adjusted"] < SIGNIFICANCE_LEVEL
    )
    return f"{arrow}*" if significant else arrow


def _sparkline(values: Sequence[float]) -> str:
    """Tiny block-character chart, shared y-scale handled by caller."""
    blocks = "▁▂▃▄▅▆▇█"
    peak = max(values) if values else 0.0
    if peak <= 0:
        return blocks[0] * len(values)
    return "".join(
        blocks[min(len(blocks) - 1, int(value / peak * (len(blocks) - 1)))]
        for value in values
    )


def render_markdown(report: Dict) -> str:
    """The human half of the report, regenerated from the JSON dict."""
    lines = [
        "# Policy A/B evaluation",
        "",
        f"- baseline: `{report['baseline']}`",
        f"- runs evaluated: {report['num_runs']}"
        f" (fingerprint `{report['fingerprint'][:12]}`)",
        f"- confidence: {report['confidence']:.2f},"
        f" resamples: {report['resamples']}, seed: {report['seed']}",
        f"- significance: Holm-adjusted permutation p <"
        f" {SIGNIFICANCE_LEVEL} (marked `*`)",
        "",
        "Deltas are candidate − baseline; the verdict column is"
        " direction-aware (for MPKI and traffic rates, lower is"
        " better).",
    ]
    for comparison in report["comparisons"]:
        lines += [
            "",
            f"## `{comparison['policy']}` vs `{report['baseline']}`",
            "",
            f"{comparison['num_pairs']} paired workloads"
            + (
                f"; {len(comparison['unmatched'])} unmatched"
                if comparison["unmatched"]
                else ""
            )
            + (
                f"; {comparison['ambiguous']} ambiguous cells"
                " (lowest job key used)"
                if comparison["ambiguous"]
                else ""
            ),
            "",
            "| metric | slice | n | baseline | candidate | Δ mean |"
            " 95% CI | geomean ratio | p (perm) | p (Holm) | p (sign) |"
            " verdict |",
            "|---|---|---|---|---|---|---|---|---|---|---|---|",
        ]
        for cell in comparison["cells"]:
            lines.append(
                f"| {cell['metric']} | {cell['slice']} | {cell['n']} |"
                f" {_fmt(cell['mean_a'])} | {_fmt(cell['mean_b'])} |"
                f" {_fmt(cell['mean_delta'])} |"
                f" [{_fmt(cell['ci_low'])}, {_fmt(cell['ci_high'])}] |"
                f" {_fmt(cell['geomean_ratio'])} |"
                f" {_fmt_p(cell['p_permutation'])} |"
                f" {_fmt_p(cell['p_adjusted'])} |"
                f" {_fmt_p(cell['p_sign'])} |"
                f" {_verdict(cell)} |"
            )
        overlay = comparison.get("overlay")
        if overlay:
            scale = max(
                max(overlay["baseline"], default=0.0),
                max(overlay["candidate"], default=0.0),
            )
            lines += [
                "",
                f"### Back-invalidate-class traffic over time"
                f" ({overlay['num_pairs']} pairs,"
                f" {overlay['window_cycles']}-cycle windows)",
                "",
                "```",
                f"baseline  {_sparkline(overlay['baseline'])}"
                f"  mean {_fmt(_mean(overlay['baseline']))}/kcycle",
                f"candidate {_sparkline(overlay['candidate'])}"
                f"  mean {_fmt(_mean(overlay['candidate']))}/kcycle",
                f"(y-scale 0..{_fmt(scale)} msgs/kcycle,"
                f" {overlay['num_windows']} windows)",
                "```",
            ]
    lines.append("")
    return "\n".join(lines)


def _mean(values: Sequence[float]) -> Optional[float]:
    if not values:
        return None
    return sum(values) / len(values)


def render_json(report: Dict) -> str:
    """Canonical JSON serialisation (sorted keys, trailing newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def write_report(
    report: Dict, out_dir: Union[str, Path], stem: str = "eval-report"
) -> Tuple[Path, Path]:
    """Write ``<stem>.json`` and ``<stem>.md``; returns both paths."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / f"{stem}.json"
    md_path = directory / f"{stem}.md"
    json_path.write_text(render_json(report))
    md_path.write_text(render_markdown(report))
    return json_path, md_path
