"""Longitudinal diffing: did the *repo* move, not just the policy?

The A/B report compares policies at one point in time.  This module
answers the orthogonal question — has the codebase itself drifted
between two states — from two artefact families the repo already
maintains:

* ``BENCH_*.json`` host-performance baselines (the ``repro.perf``
  harness output): scenario throughput is compared best-run against
  best-run, with a relative tolerance because host numbers are noisy
  by nature.
* result-cache entries, which are *exact*: the simulator is
  deterministic, so the content digest of a cache file is a golden
  value.  Any changed digest for the same job key means simulated
  behaviour changed and calibrated experiments need re-baselining —
  the same tripwire ``tests/test_regression_golden.py`` pins for one
  configuration, generalised to every cached run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Union

from ..errors import EvalError

#: relative throughput drop treated as a regression in bench diffs —
#: host benchmarks jitter run-to-run, so this is deliberately loose;
#: the exact tripwire is the digest diff, not the bench diff.
DEFAULT_BENCH_TOLERANCE = 0.10


def load_bench(path: Union[str, Path]) -> Dict:
    """One ``BENCH_*.json`` document, scenario list checked."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise EvalError(f"unreadable bench file {path}: {error}")
    if not isinstance(data, dict) or "scenarios" not in data:
        raise EvalError(f"{path} is not a bench document (no 'scenarios')")
    return data


def diff_benches(
    old: Dict, new: Dict, tolerance: float = DEFAULT_BENCH_TOLERANCE
) -> Dict:
    """Scenario-by-scenario throughput comparison of two bench files.

    ``ratio`` is new/old best-run throughput; a scenario regresses when
    the ratio falls below ``1 - tolerance``.  Scenarios present on only
    one side are listed, never silently dropped.
    """
    old_by_name = {s["name"]: s for s in old.get("scenarios", [])}
    new_by_name = {s["name"]: s for s in new.get("scenarios", [])}
    rows: List[Dict] = []
    for name in sorted(set(old_by_name) & set(new_by_name)):
        before = float(old_by_name[name]["value"])
        after = float(new_by_name[name]["value"])
        ratio = after / before if before > 0 else None
        rows.append(
            {
                "name": name,
                "metric": new_by_name[name].get("metric", ""),
                "old": before,
                "new": after,
                "ratio": ratio,
                "regressed": ratio is not None and ratio < 1.0 - tolerance,
            }
        )
    return {
        "kind": "bench-diff",
        "tolerance": tolerance,
        "old_fingerprint": old.get("fingerprint", {}),
        "new_fingerprint": new.get("fingerprint", {}),
        "scenarios": rows,
        "only_old": sorted(set(old_by_name) - set(new_by_name)),
        "only_new": sorted(set(new_by_name) - set(old_by_name)),
        "regressions": sorted(
            row["name"] for row in rows if row["regressed"]
        ),
    }


def cache_digests(cache_dir: Union[str, Path]) -> Dict[str, str]:
    """Content digest of every result-cache entry, by job key.

    sha256 over the raw file bytes: cache writes are canonical (single
    writer, ``json.dumps`` with fixed options), so byte equality is
    the right notion of "same simulated outcome".
    """
    directory = Path(cache_dir)
    if not directory.is_dir():
        raise EvalError(f"no such cache directory: {directory}")
    digests: Dict[str, str] = {}
    for entry in sorted(directory.glob("*.json")):
        stem = entry.stem
        if len(stem) == 40 and all(c in "0123456789abcdef" for c in stem):
            digests[stem] = hashlib.sha256(entry.read_bytes()).hexdigest()
    return digests


def diff_digests(old: Dict[str, str], new: Dict[str, str]) -> Dict:
    """Exact golden diff between two digest maps.

    ``changed`` is the alarm list: the same job key (same simulated
    coordinate, by content-hash construction) producing different
    bytes means simulator behaviour drifted.
    """
    shared = set(old) & set(new)
    return {
        "kind": "digest-diff",
        "changed": sorted(key for key in shared if old[key] != new[key]),
        "unchanged": sum(1 for key in shared if old[key] == new[key]),
        "only_old": sorted(set(old) - set(new)),
        "only_new": sorted(set(new) - set(old)),
    }


def render_longitudinal(diff: Dict) -> str:
    """Markdown for either diff kind (dispatches on ``kind``)."""
    if diff.get("kind") == "digest-diff":
        lines = [
            "# Result-cache golden diff",
            "",
            f"- unchanged entries: {diff['unchanged']}",
            f"- changed entries: {len(diff['changed'])}",
            f"- only in old: {len(diff['only_old'])},"
            f" only in new: {len(diff['only_new'])}",
        ]
        if diff["changed"]:
            lines += ["", "Changed job keys (behaviour drift!):", ""]
            lines += [f"- `{key}`" for key in diff["changed"]]
        else:
            lines += ["", "No shared entry changed — simulated behaviour"
                      " is stable across the two states."]
        lines.append("")
        return "\n".join(lines)
    lines = [
        "# Host-benchmark diff",
        "",
        f"- tolerance: {diff['tolerance']:.0%} relative",
        f"- regressions: {len(diff['regressions'])}",
        "",
        "| scenario | old | new | ratio | verdict |",
        "|---|---|---|---|---|",
    ]
    for row in diff["scenarios"]:
        ratio = "—" if row["ratio"] is None else f"{row['ratio']:.3f}"
        verdict = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"| {row['name']} | {row['old']:.1f} | {row['new']:.1f} |"
            f" {ratio} | {verdict} |"
        )
    for side, names in (("old", diff["only_old"]), ("new", diff["only_new"])):
        if names:
            lines += ["", f"Only in {side}: " + ", ".join(names)]
    lines.append("")
    return "\n".join(lines)
