"""Metric extraction and slice construction over paired runs.

A report answers "how does policy B compare to baseline A" *per
metric* and *per workload slice*.  This module owns both axes:

* :data:`METRICS` declares the derived per-run metrics — throughput,
  LLC MPKI, LLC miss rate, inclusion victims per kilo-instruction and
  the paper's Section V.B back-invalidate-class rate — each tagged
  with the direction that counts as an improvement so the report can
  colour deltas without per-metric special cases.
* :func:`slice_pairs` groups the paired runs by workload-category tag
  (``CCF+LLCT`` etc., from the sweep manifest), always prepending the
  ``All`` slice, so every table row is "this metric, on this subset of
  workloads, with paired statistics".
* :func:`interval_overlay` reduces the per-kcycle interval series of
  both sides of every pair to a window-aligned mean overlay — the
  time-resolved version of the back-invalidate rate claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..orchestrate import RunSummary
from ..telemetry.events import BACK_INVALIDATE_CLASS
from .pairing import Pair
from .stats import PairedStats, derive_seed, paired_stats

#: slice label covering every pair regardless of category.
SLICE_ALL = "All"


@dataclass(frozen=True)
class Metric:
    """One derived per-run metric, with its improvement direction."""

    name: str
    unit: str
    higher_is_better: bool
    extract: Callable[[RunSummary], float]
    description: str


def _total_instructions(summary: RunSummary) -> int:
    return sum(summary.instructions)


def _llc_mpki(summary: RunSummary) -> float:
    instructions = _total_instructions(summary)
    return 1000.0 * summary.llc_misses / instructions if instructions else 0.0


def _llc_miss_rate(summary: RunSummary) -> float:
    return (
        summary.llc_misses / summary.llc_accesses
        if summary.llc_accesses
        else 0.0
    )


def _victims_per_ki(summary: RunSummary) -> float:
    instructions = _total_instructions(summary)
    return (
        1000.0 * summary.inclusion_victims / instructions
        if instructions
        else 0.0
    )


def _bi_class_per_kcycle(summary: RunSummary) -> float:
    messages = sum(summary.traffic.get(key, 0) for key in BACK_INVALIDATE_CLASS)
    return 1000.0 * messages / summary.max_cycles if summary.max_cycles else 0.0


#: the report's metric set, in table order.
METRICS: Tuple[Metric, ...] = (
    Metric(
        name="throughput",
        unit="IPC",
        higher_is_better=True,
        extract=lambda summary: summary.throughput,
        description="sum of per-core IPCs",
    ),
    Metric(
        name="llc_mpki",
        unit="misses/KI",
        higher_is_better=False,
        extract=_llc_mpki,
        description="LLC misses per kilo-instruction (all cores)",
    ),
    Metric(
        name="llc_miss_rate",
        unit="ratio",
        higher_is_better=False,
        extract=_llc_miss_rate,
        description="LLC misses / LLC accesses",
    ),
    Metric(
        name="inclusion_victims_per_ki",
        unit="victims/KI",
        higher_is_better=False,
        extract=_victims_per_ki,
        description="hot lines killed by inclusion per kilo-instruction",
    ),
    Metric(
        name="bi_class_per_kcycle",
        unit="msgs/kcycle",
        higher_is_better=False,
        extract=_bi_class_per_kcycle,
        description="back-invalidate-class messages per 1000 cycles "
        "(paper Section V.B)",
    ),
)

METRICS_BY_NAME: Dict[str, Metric] = {metric.name: metric for metric in METRICS}


def metric_values(
    pairs: Sequence[Pair], metric: Metric
) -> Tuple[List[float], List[float]]:
    """(baseline, candidate) value vectors for one metric, pair-aligned."""
    a = [metric.extract(pair.a.summary) for pair in pairs]
    b = [metric.extract(pair.b.summary) for pair in pairs]
    return a, b


def slice_pairs(pairs: Sequence[Pair]) -> Dict[str, List[Pair]]:
    """Pairs grouped by category tag, ``All`` first, tags sorted."""
    slices: Dict[str, List[Pair]] = {SLICE_ALL: list(pairs)}
    by_category: Dict[str, List[Pair]] = {}
    for pair in pairs:
        by_category.setdefault(pair.category, []).append(pair)
    for category in sorted(by_category):
        slices[category] = by_category[category]
    return slices


@dataclass(frozen=True)
class SliceCell:
    """One (metric, slice) table cell: the paired stats plus context."""

    metric: str
    slice_name: str
    stats: PairedStats
    higher_is_better: bool
    #: Holm-adjusted permutation p-value, filled in report assembly
    #: once the whole comparison family is known.
    p_adjusted: Optional[float] = None

    @property
    def improved(self) -> Optional[bool]:
        """Direction-aware verdict on the mean delta (None for a tie)."""
        if self.stats.mean_delta == 0:
            return None
        if self.higher_is_better:
            return self.stats.mean_delta > 0
        return self.stats.mean_delta < 0

    def to_dict(self) -> Dict:
        data = {
            "metric": self.metric,
            "slice": self.slice_name,
            "higher_is_better": self.higher_is_better,
            "improved": self.improved,
            "p_adjusted": self.p_adjusted,
        }
        data.update(self.stats.to_dict())
        return data


def build_cells(
    pairs: Sequence[Pair],
    metrics: Sequence[Metric] = METRICS,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 2010,
) -> List[SliceCell]:
    """Every (metric, slice) cell for one policy contrast, table order.

    Each cell resamples from its own :func:`~repro.eval.stats.derive_seed`
    stream, so adding a metric or slice never perturbs the others'
    intervals — reports stay stable under extension.
    """
    cells: List[SliceCell] = []
    for metric in metrics:
        for slice_name, members in slice_pairs(pairs).items():
            a, b = metric_values(members, metric)
            cell_seed = derive_seed(seed, f"{metric.name}:{slice_name}")
            cells.append(
                SliceCell(
                    metric=metric.name,
                    slice_name=slice_name,
                    stats=paired_stats(a, b, confidence, resamples, cell_seed),
                    higher_is_better=metric.higher_is_better,
                )
            )
    return cells


def interval_overlay(pairs: Sequence[Pair]) -> Optional[Dict]:
    """Mean back-invalidate-class per-kcycle series across pairs.

    Uses :meth:`~repro.telemetry.IntervalSeries.back_invalidate_class_per_kcycle`
    from each side's interval telemetry, truncated to the shortest
    series so every window averages over the same pair population.
    Returns ``None`` when no pair carries interval telemetry (interval
    collection is opt-in), never a fabricated flat line.
    """
    series_a: List[List[float]] = []
    series_b: List[List[float]] = []
    window = None
    for pair in pairs:
        intervals_a = pair.a.summary.interval_series()
        intervals_b = pair.b.summary.interval_series()
        if intervals_a is None or intervals_b is None:
            continue
        if intervals_a.num_windows == 0 or intervals_b.num_windows == 0:
            continue
        window = window or intervals_a.window
        series_a.append(intervals_a.back_invalidate_class_per_kcycle())
        series_b.append(intervals_b.back_invalidate_class_per_kcycle())
    if not series_a:
        return None
    length = min(len(series) for series in series_a + series_b)
    mean_a = [
        sum(series[index] for series in series_a) / len(series_a)
        for index in range(length)
    ]
    mean_b = [
        sum(series[index] for series in series_b) / len(series_b)
        for index in range(length)
    ]
    return {
        "metric": "bi_class_per_kcycle",
        "window_cycles": window,
        "num_pairs": len(series_a),
        "num_windows": length,
        "baseline": mean_a,
        "candidate": mean_b,
    }
