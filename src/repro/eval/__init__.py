"""Statistical A/B evaluation over cached sweep telemetry.

``repro.eval`` turns the artefacts every sweep already leaves behind —
result-cache entries keyed by content-hash job keys, sweep-manifest
journals carrying workload-category tags — into paired policy
comparisons with honest uncertainty, **without re-running a single
simulation**.  Four layers:

* :mod:`~repro.eval.pairing` — align cached runs across policies by
  workload coordinate (spec-driven exact job-key lookup, or
  manifest/cache discovery);
* :mod:`~repro.eval.stats` — seeded bootstrap CIs, permutation and
  sign tests, Holm correction, geomean-of-ratios (stdlib only);
* :mod:`~repro.eval.slicing` — the metric set (throughput, LLC MPKI,
  miss rate, inclusion victims, back-invalidate-class traffic) and
  per-workload-category slices, plus interval-series overlays;
* :mod:`~repro.eval.report` — assembly into byte-deterministic
  markdown + JSON report pairs (``python -m repro.eval report``), and
  :mod:`~repro.eval.longitudinal` for bench-file and cache-digest
  diffs between repo states.
"""

from .longitudinal import (
    cache_digests,
    diff_benches,
    diff_digests,
    load_bench,
    render_longitudinal,
)
from .pairing import (
    BASELINE_POLICY,
    Pair,
    Pairing,
    RunRecord,
    available_policies,
    discover_records,
    pair_records,
    parse_policy,
    policy_name,
    record_from_summary,
    records_from_spec,
    records_from_sweep_manifest,
)
from .report import (
    REPORT_SCHEMA_VERSION,
    build_report,
    render_json,
    render_markdown,
    report_fingerprint,
    write_report,
)
from .slicing import (
    METRICS,
    METRICS_BY_NAME,
    SLICE_ALL,
    Metric,
    SliceCell,
    build_cells,
    interval_overlay,
    metric_values,
    slice_pairs,
)
from .stats import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    DEFAULT_SEED,
    PairedStats,
    bootstrap_ci,
    derive_seed,
    geomean,
    geomean_ratio,
    holm_correction,
    paired_deltas,
    paired_stats,
    permutation_pvalue,
    sign_test_pvalue,
)

__all__ = [
    "BASELINE_POLICY",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_RESAMPLES",
    "DEFAULT_SEED",
    "METRICS",
    "METRICS_BY_NAME",
    "Metric",
    "Pair",
    "PairedStats",
    "Pairing",
    "REPORT_SCHEMA_VERSION",
    "RunRecord",
    "SLICE_ALL",
    "SliceCell",
    "available_policies",
    "bootstrap_ci",
    "build_cells",
    "build_report",
    "cache_digests",
    "derive_seed",
    "diff_benches",
    "diff_digests",
    "discover_records",
    "geomean",
    "geomean_ratio",
    "holm_correction",
    "interval_overlay",
    "load_bench",
    "metric_values",
    "pair_records",
    "paired_deltas",
    "paired_stats",
    "parse_policy",
    "permutation_pvalue",
    "policy_name",
    "record_from_summary",
    "records_from_spec",
    "records_from_sweep_manifest",
    "render_json",
    "render_longitudinal",
    "render_markdown",
    "report_fingerprint",
    "sign_test_pvalue",
    "slice_pairs",
    "write_report",
]
