"""Pairing: align cached runs across policies, re-simulating nothing.

Evaluation consumes artefacts the stack already produces.  A sweep
leaves two records behind: the append-only ``sweep-manifest.jsonl``
journal (job key, label, workload category, status) and one
``<job_key>.json`` :class:`~repro.orchestrate.RunSummary` per executed
job in the :class:`~repro.orchestrate.ResultCache` directory.  This
module reads both and aligns runs *pairwise*: two runs form a pair
when they simulated the identical workload coordinate under two
different policies, which is exactly the unit of evidence the paper's
figures are built from.

Two resolution strategies, strongest first:

* **Spec-driven** (:func:`records_from_spec`): rebuild the sweep's
  :class:`~repro.orchestrate.SimJob` descriptions from experiment
  settings and compute their :func:`~repro.orchestrate.job_key` — the
  lookup is then exact on the full hierarchy-config coordinate
  (scale, quota, warmup, LLC size, ...), because the key *is* that
  coordinate's content hash.
* **Discovery** (:func:`discover_records`): scan the manifest (or,
  without one, the cache directory) and take coordinates from the
  summaries themselves.  Ambiguities — the same (workload, policy)
  seen under several fidelity configurations — are resolved
  deterministically (lowest job key wins) and surfaced in the report
  rather than silently mixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import EvalError, ReproError
from ..orchestrate import ResultCache, RunSummary, SweepManifest, job_key
from ..orchestrate.manifest import STATUS_DONE
from ..workloads import mix_category

#: slice tag for runs whose apps no current profile covers (entries
#: cached by an older benchmark set); they still pair and appear in
#: the ``All`` slice, just under this explicit bucket.
CATEGORY_UNKNOWN = "uncategorised"

#: the baseline the paper normalises everything against.
BASELINE_POLICY = "inclusive/none"


def policy_name(mode: str, tla: str) -> str:
    """Canonical policy identity: ``mode/tla`` (e.g. ``inclusive/qbs``)."""
    return f"{mode}/{tla}"


def parse_policy(name: str) -> Tuple[str, str]:
    """Split ``mode/tla`` back into its components."""
    parts = name.split("/")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise EvalError(
            f"bad policy {name!r}; expected 'mode/tla' like 'inclusive/qbs'"
        )
    return parts[0], parts[1]


@dataclass(frozen=True)
class RunRecord:
    """One cached simulation, addressed for evaluation.

    ``workload`` is the pairing coordinate (the app tuple — core
    count is implicit in its length); ``policy`` is the contrast axis;
    ``category`` the slicing axis.  The summary carries the metrics.
    """

    key: str
    policy: str
    workload: Tuple[str, ...]
    mix: str
    category: str
    summary: RunSummary

    @property
    def num_cores(self) -> int:
        return len(self.workload)


def record_from_summary(
    key: str, summary: RunSummary, category: Optional[str] = None
) -> RunRecord:
    """Lift a cached :class:`RunSummary` into a :class:`RunRecord`.

    ``category`` normally comes from the sweep manifest (journalled
    next to the job since PR 9); summaries cached before that — or
    loaded without a manifest — fall back to deriving it from the app
    tuple, which is equivalent by construction.
    """
    apps = tuple(summary.apps)
    if category is None:
        try:
            category = mix_category(apps)
        except ReproError:
            category = CATEGORY_UNKNOWN
    return RunRecord(
        key=key,
        policy=policy_name(summary.mode, summary.tla),
        workload=apps,
        mix=summary.mix,
        category=category,
        summary=summary,
    )


def discover_records(
    cache_dir: Union[str, Path],
    manifest_name: str = "sweep-manifest.jsonl",
) -> List[RunRecord]:
    """Every usable cached run under ``cache_dir``, manifest-first.

    Keys listed as done in the sweep manifest are loaded with their
    journalled category tag; anything else in the directory (runs from
    manifest-less serial sweeps) is picked up by scanning for
    ``<40-hex>.json`` entries.  Ordering is deterministic (sorted by
    job key) regardless of directory iteration order.
    """
    directory = Path(cache_dir)
    if not directory.is_dir():
        raise EvalError(f"no such cache directory: {directory}")
    cache = ResultCache(str(directory))
    categories: Dict[str, Optional[str]] = {}
    manifest_path = directory / manifest_name
    if manifest_path.exists():
        for key, record in SweepManifest(manifest_path).statuses().items():
            if record.status == STATUS_DONE:
                categories[key] = record.category
    for entry in directory.glob("*.json"):
        stem = entry.stem
        if len(stem) == 40 and all(c in "0123456789abcdef" for c in stem):
            categories.setdefault(stem, None)
    records = []
    for key in sorted(categories):
        summary = cache.load(key)
        if summary is None:
            continue  # failed/cancelled key, or a corrupt entry
        records.append(record_from_summary(key, summary, categories[key]))
    return records


def records_from_sweep_manifest(
    manifest: Union[str, Path, SweepManifest],
    cache_dir: Union[str, Path],
) -> List[RunRecord]:
    """Records for exactly the done jobs of one sweep manifest."""
    if not isinstance(manifest, SweepManifest):
        manifest = SweepManifest(manifest)
    cache = ResultCache(str(cache_dir))
    records = []
    for key in sorted(manifest.statuses()):
        record = manifest.statuses()[key]
        if record.status != STATUS_DONE:
            continue
        summary = cache.load(key)
        if summary is None:
            continue
        records.append(record_from_summary(key, summary, record.category))
    return records


def records_from_spec(
    settings,
    mixes: Iterable,
    policies: Sequence[str],
    cache_dir: Optional[Union[str, Path]] = None,
) -> Tuple[List[RunRecord], List[str]]:
    """Exact-coordinate loading via recomputed job keys.

    ``settings`` is an :class:`~repro.experiments.ExperimentSettings`;
    each (mix, policy) cell is resolved to its job key with the same
    :func:`~repro.experiments.runner.build_job` the drivers use, then
    looked up in the cache.  Returns ``(records, missing_labels)`` —
    nothing is ever simulated here; a missing cell means that sweep
    has not been run (or ran at different fidelity knobs).
    """
    from ..experiments.runner import build_job

    cache = ResultCache(str(cache_dir) if cache_dir else settings.cache_dir)
    records: List[RunRecord] = []
    missing: List[str] = []
    for mix in mixes:
        for policy in policies:
            mode, tla = parse_policy(policy)
            job = build_job(settings, mix, mode=mode, tla=tla)
            key = job_key(job)
            summary = cache.load(key)
            if summary is None:
                missing.append(f"{mix.name}:{policy}")
            else:
                records.append(record_from_summary(key, summary, job.category))
    return records, missing


@dataclass(frozen=True)
class Pair:
    """One workload simulated under both policies of a contrast."""

    workload: Tuple[str, ...]
    mix: str
    category: str
    a: RunRecord
    b: RunRecord


@dataclass
class Pairing:
    """The outcome of aligning two policies' runs."""

    policy_a: str
    policy_b: str
    pairs: List[Pair]
    #: workloads with a run under exactly one of the two policies.
    unmatched: List[str]
    #: workloads where one (workload, policy) cell held several cached
    #: runs (e.g. two fidelity configurations); resolved to the lowest
    #: job key, counted here so reports can flag the ambiguity.
    ambiguous: int = 0


def pair_records(
    records: Sequence[RunRecord], policy_a: str, policy_b: str
) -> Pairing:
    """Align ``records`` into (policy_a, policy_b) pairs by workload.

    Within one (workload, policy) cell, runs are ordered by job key
    and the first is used — deterministic under any input order, with
    the ambiguity counted for the report header.
    """
    cells: Dict[Tuple[Tuple[str, ...], str], List[RunRecord]] = {}
    for record in records:
        if record.policy not in (policy_a, policy_b):
            continue
        cells.setdefault((record.workload, record.policy), []).append(record)
    ambiguous = 0
    chosen: Dict[Tuple[Tuple[str, ...], str], RunRecord] = {}
    for cell, candidates in cells.items():
        candidates.sort(key=lambda record: record.key)
        if len(candidates) > 1:
            ambiguous += 1
        chosen[cell] = candidates[0]
    workloads = sorted({workload for workload, _ in chosen})
    pairs: List[Pair] = []
    unmatched: List[str] = []
    for workload in workloads:
        a = chosen.get((workload, policy_a))
        b = chosen.get((workload, policy_b))
        if a is None or b is None:
            present = a or b
            unmatched.append(f"{present.mix}({'+'.join(workload)})")
            continue
        pairs.append(
            Pair(
                workload=workload,
                mix=a.mix,
                category=a.category,
                a=a,
                b=b,
            )
        )
    return Pairing(
        policy_a=policy_a,
        policy_b=policy_b,
        pairs=pairs,
        unmatched=unmatched,
        ambiguous=ambiguous,
    )


def available_policies(records: Sequence[RunRecord]) -> List[str]:
    """Distinct policies among ``records``, sorted."""
    return sorted({record.policy for record in records})
