"""``python -m repro.eval`` — regeneratable policy evaluation reports.

Four subcommands, all read-only over existing artefacts:

* ``slice`` — inventory: which workloads, categories and policies the
  cache can currently pair (run this first to see what a report would
  cover).
* ``ab`` — one contrast, printed as markdown: ``--policy`` vs
  ``--baseline`` across every metric and slice.
* ``report`` — the full document: every cached policy against the
  baseline, written as ``eval-report.json`` + ``eval-report.md``
  (byte-identical on regeneration; see :mod:`repro.eval.report`).
* ``longitudinal`` — diff two repo states: two ``BENCH_*.json`` files
  (tolerant throughput comparison) or two cache directories (exact
  golden digest comparison), dispatched on whether the operands are
  directories.

Nothing here ever starts a simulation: a missing (workload, policy)
cell is reported, not filled in.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import ReproError
from ..telemetry import get_logger
from .longitudinal import (
    cache_digests,
    diff_benches,
    diff_digests,
    load_bench,
    render_longitudinal,
)
from .pairing import (
    BASELINE_POLICY,
    available_policies,
    discover_records,
    pair_records,
)
from .report import build_report, render_markdown, write_report
from .stats import DEFAULT_CONFIDENCE, DEFAULT_RESAMPLES, DEFAULT_SEED

log = get_logger("repro.eval")


def _add_stat_knobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--confidence",
        type=float,
        default=DEFAULT_CONFIDENCE,
        help="two-sided CI level (default %(default)s)",
    )
    parser.add_argument(
        "--resamples",
        type=int,
        default=DEFAULT_RESAMPLES,
        help="bootstrap/permutation resamples (default %(default)s)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="base seed for all resampling (default %(default)s)",
    )


def _add_cache(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache",
        default=".repro-cache",
        help="result-cache directory to evaluate (default %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        default=BASELINE_POLICY,
        help="baseline policy as mode/tla (default %(default)s)",
    )


def cmd_slice(args) -> int:
    records = discover_records(args.cache)
    if not records:
        log.error("no_runs", cache=args.cache)
        return 1
    policies = available_policies(records)
    print(f"{len(records)} cached runs, {len(policies)} policies: "
          + ", ".join(policies))
    print()
    print("| category | workloads | policies covering all of them |")
    print("|---|---|---|")
    by_category = {}
    for record in records:
        by_category.setdefault(record.category, []).append(record)
    for category in sorted(by_category):
        members = by_category[category]
        workloads = sorted({record.mix for record in members})
        full = [
            policy
            for policy in policies
            if {
                record.mix for record in members if record.policy == policy
            } == set(workloads)
        ]
        print(
            f"| {category} | {', '.join(workloads)} |"
            f" {', '.join(full) if full else '—'} |"
        )
    return 0


def cmd_ab(args) -> int:
    records = discover_records(args.cache)
    pairing = pair_records(records, args.baseline, args.policy)
    if not pairing.pairs:
        log.error(
            "no_pairs",
            baseline=args.baseline,
            policy=args.policy,
            available=available_policies(records),
        )
        return 1
    report = build_report(
        records,
        baseline=args.baseline,
        policies=[args.policy],
        confidence=args.confidence,
        resamples=args.resamples,
        seed=args.seed,
    )
    print(render_markdown(report), end="")
    return 0


def cmd_report(args) -> int:
    records = discover_records(args.cache)
    report = build_report(
        records,
        baseline=args.baseline,
        policies=args.policies.split(",") if args.policies else None,
        confidence=args.confidence,
        resamples=args.resamples,
        seed=args.seed,
    )
    json_path, md_path = write_report(report, args.out, args.stem)
    log.info(
        "report_written",
        json=str(json_path),
        markdown=str(md_path),
        comparisons=len(report["comparisons"]),
        fingerprint=report["fingerprint"][:12],
    )
    print(render_markdown(report), end="")
    return 0


def cmd_longitudinal(args) -> int:
    old, new = Path(args.old), Path(args.new)
    if old.is_dir() != new.is_dir():
        log.error("mixed_operands", old=str(old), new=str(new))
        return 2
    if old.is_dir():
        diff = diff_digests(cache_digests(old), cache_digests(new))
        print(render_longitudinal(diff), end="")
        return 1 if diff["changed"] else 0
    diff = diff_benches(load_bench(old), load_bench(new), args.tolerance)
    print(render_longitudinal(diff), end="")
    return 1 if diff["regressions"] else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="statistical A/B evaluation over cached sweep results",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    slice_parser = sub.add_parser(
        "slice", help="inventory cached runs by category and policy"
    )
    _add_cache(slice_parser)
    slice_parser.set_defaults(func=cmd_slice)

    ab = sub.add_parser("ab", help="one policy-vs-baseline contrast")
    _add_cache(ab)
    ab.add_argument("--policy", required=True, help="candidate mode/tla")
    _add_stat_knobs(ab)
    ab.set_defaults(func=cmd_ab)

    report = sub.add_parser(
        "report", help="full multi-policy report (markdown + JSON)"
    )
    _add_cache(report)
    report.add_argument(
        "--policies",
        default=None,
        help="comma-separated mode/tla list (default: every cached"
        " policy except the baseline)",
    )
    report.add_argument(
        "--out", default="eval-out", help="output directory (default %(default)s)"
    )
    report.add_argument(
        "--stem",
        default="eval-report",
        help="output file stem (default %(default)s)",
    )
    _add_stat_knobs(report)
    report.set_defaults(func=cmd_report)

    longitudinal = sub.add_parser(
        "longitudinal",
        help="diff two BENCH_*.json files or two cache directories",
    )
    longitudinal.add_argument("old", help="bench file or cache dir (before)")
    longitudinal.add_argument("new", help="bench file or cache dir (after)")
    longitudinal.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative bench regression threshold (default %(default)s)",
    )
    longitudinal.set_defaults(func=cmd_longitudinal)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        log.error("eval_failed", error=str(error))
        return 1


if __name__ == "__main__":
    sys.exit(main())
