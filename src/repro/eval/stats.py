"""Paired statistics on seeded, dependency-free resampling.

The paper's claims are *paired* comparisons: the same workload runs
under two policies and the per-workload difference is what carries
evidence (Figures 11-16 are all built this way).  This module supplies
exactly the machinery those comparisons need and nothing more:

* percentile **bootstrap confidence intervals** on the mean paired
  delta;
* a **sign-flip permutation test** (exact enumeration for small n,
  seeded Monte-Carlo above that) for "is the mean delta zero?";
* the exact binomial **sign test** as a distribution-free cross-check;
* **Holm-Bonferroni correction** for the many comparisons one report
  makes;
* **geomean-of-ratios** summaries, the standard way to aggregate
  throughput ratios across workloads.

Everything resamples through an explicitly seeded
:class:`random.Random` — no numpy, no scipy, no global random state —
so a report built twice from the same inputs is byte-identical
(pinned by ``tests/eval/test_report.py``).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import EvalError

#: default resample count for bootstrap and permutation routines —
#: enough for stable 3-decimal p-values at report scale while keeping
#: a full report well under a second.
DEFAULT_RESAMPLES = 2000

#: default two-sided confidence level for bootstrap intervals.
DEFAULT_CONFIDENCE = 0.95

#: default base seed (the paper's publication year, like the workload
#: generators use); every routine derives its own stream from it.
DEFAULT_SEED = 2010


def derive_seed(base: int, tag: str) -> int:
    """A deterministic per-comparison seed from a base seed and a tag.

    Hashes through :mod:`hashlib` (not ``hash()``), so the derived
    stream is independent of ``PYTHONHASHSEED`` and the process — the
    same property the job keys rely on.
    """
    digest = hashlib.sha1(f"{base}:{tag}".encode()).hexdigest()
    return int(digest[:12], 16)


def mean(values: Sequence[float]) -> float:
    if not values:
        raise EvalError("mean of an empty sample")
    return math.fsum(values) / len(values)


def paired_deltas(
    a: Sequence[float], b: Sequence[float]
) -> List[float]:
    """Per-pair differences ``b[i] - a[i]`` (candidate minus baseline)."""
    if len(a) != len(b):
        raise EvalError(
            f"paired samples differ in length: {len(a)} vs {len(b)}"
        )
    return [bv - av for av, bv in zip(a, b)]


def bootstrap_ci(
    deltas: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = DEFAULT_SEED,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the mean of ``deltas``.

    Resamples the paired deltas with replacement ``resamples`` times
    and reads the interval off the sorted resample means.  The
    percentile method is used (rather than BCa) because report tables
    need honest, explainable intervals more than second-order
    accuracy; the coverage property test in ``tests/eval`` pins that
    the achieved coverage tracks ``confidence`` on synthetic data.
    """
    if not deltas:
        raise EvalError("bootstrap over an empty sample")
    if not 0.0 < confidence < 1.0:
        raise EvalError("confidence must be in (0, 1)")
    if resamples < 1:
        raise EvalError("resamples must be positive")
    rng = Random(seed)
    n = len(deltas)
    means = sorted(
        math.fsum(deltas[rng.randrange(n)] for _ in range(n)) / n
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = int(math.floor(alpha * (resamples - 1)))
    hi_index = int(math.ceil((1.0 - alpha) * (resamples - 1)))
    return means[lo_index], means[hi_index]


def permutation_pvalue(
    deltas: Sequence[float],
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = DEFAULT_SEED,
) -> float:
    """Two-sided sign-flip permutation p-value for mean(deltas) == 0.

    Under the null, each pair's delta is symmetric around zero, so
    every sign assignment is equally likely.  With ``2**n`` at or
    below the resample budget the test enumerates all assignments
    (exact p, zero Monte-Carlo noise); above it, it draws seeded
    random assignments and applies the standard +1 correction so the
    estimate can never claim p == 0.
    """
    if not deltas:
        raise EvalError("permutation test over an empty sample")
    n = len(deltas)
    observed = abs(math.fsum(deltas))
    # Exhaustive for small n: every p-value is a rational with a
    # fixed denominator, so repeated reports agree to the last bit.
    if 2 ** n <= max(resamples, 4096):
        hits = 0
        for mask in range(2 ** n):
            total = 0.0
            for index, delta in enumerate(deltas):
                total += delta if mask >> index & 1 else -delta
            if abs(total) >= observed - 1e-12:
                hits += 1
        return hits / 2 ** n
    rng = Random(seed)
    hits = 0
    for _ in range(resamples):
        total = 0.0
        for delta in deltas:
            total += delta if rng.random() < 0.5 else -delta
        if abs(total) >= observed - 1e-12:
            hits += 1
    return (hits + 1) / (resamples + 1)


def sign_test_pvalue(deltas: Sequence[float]) -> float:
    """Exact two-sided binomial sign test (ties dropped).

    Distribution-free and unaffected by outliers — the cross-check
    column next to the permutation test: when the two disagree wildly,
    a few extreme workloads are driving the mean.
    """
    positive = sum(1 for delta in deltas if delta > 0)
    negative = sum(1 for delta in deltas if delta < 0)
    n = positive + negative
    if n == 0:
        return 1.0
    k = min(positive, negative)
    tail = sum(math.comb(n, i) for i in range(k + 1)) / 2 ** n
    return min(1.0, 2.0 * tail)


def holm_correction(pvalues: Sequence[float]) -> List[float]:
    """Holm-Bonferroni adjusted p-values, in the input order.

    Step-down: the smallest p is scaled by m, the next by m-1, ...,
    with the running maximum enforced so adjusted values are monotone
    in the raw ordering.  Controls family-wise error at the level the
    adjusted values are compared against, for any dependence between
    the tests — the right default when one report tests every
    (policy, metric, slice) cell.
    """
    m = len(pvalues)
    order = sorted(range(m), key=lambda i: (pvalues[i], i))
    adjusted = [0.0] * m
    running = 0.0
    for rank, index in enumerate(order):
        running = max(running, min(1.0, (m - rank) * pvalues[index]))
        adjusted[index] = running
    return adjusted


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise EvalError("geomean of an empty sample")
    if any(value <= 0 for value in values):
        raise EvalError("geomean requires positive values")
    return math.exp(math.fsum(math.log(value) for value in values) / len(values))


def geomean_ratio(
    a: Sequence[float], b: Sequence[float]
) -> Optional[float]:
    """Geomean of per-pair ratios ``b[i] / a[i]``.

    Pairs where either side is non-positive carry no ratio information
    (a zero-throughput run is a failure, not a measurement) and are
    skipped; ``None`` when no pair qualifies.
    """
    if len(a) != len(b):
        raise EvalError(
            f"paired samples differ in length: {len(a)} vs {len(b)}"
        )
    ratios = [bv / av for av, bv in zip(a, b) if av > 0 and bv > 0]
    if not ratios:
        return None
    return geomean(ratios)


@dataclass(frozen=True)
class PairedStats:
    """Everything one A/B table cell needs about one paired sample."""

    n: int
    mean_a: float
    mean_b: float
    mean_delta: float
    ci_low: float
    ci_high: float
    p_permutation: float
    p_sign: float
    geomean_ratio: Optional[float]
    #: pair counts by delta sign (b > a / b < a / equal).
    wins: int
    losses: int
    ties: int

    def to_dict(self) -> Dict:
        return {
            "n": self.n,
            "mean_a": self.mean_a,
            "mean_b": self.mean_b,
            "mean_delta": self.mean_delta,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "p_permutation": self.p_permutation,
            "p_sign": self.p_sign,
            "geomean_ratio": self.geomean_ratio,
            "wins": self.wins,
            "losses": self.losses,
            "ties": self.ties,
        }


def paired_stats(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = DEFAULT_SEED,
) -> PairedStats:
    """The full paired-comparison summary for one metric on one slice."""
    deltas = paired_deltas(a, b)
    ci_low, ci_high = bootstrap_ci(deltas, confidence, resamples, seed)
    return PairedStats(
        n=len(deltas),
        mean_a=mean(a),
        mean_b=mean(b),
        mean_delta=mean(deltas),
        ci_low=ci_low,
        ci_high=ci_high,
        p_permutation=permutation_pvalue(deltas, resamples, seed),
        p_sign=sign_test_pvalue(deltas),
        geomean_ratio=geomean_ratio(a, b),
        wins=sum(1 for delta in deltas if delta > 0),
        losses=sum(1 for delta in deltas if delta < 0),
        ties=sum(1 for delta in deltas if delta == 0),
    )
