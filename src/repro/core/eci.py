"""Early Core Invalidation (ECI) — paper Section III.B.

On each LLC miss, after the normal victim has been evicted and the
new line filled, ECI selects the *next* potential victim in the same
set and invalidates it early from the core caches while leaving it in
the LLC (directory bits are cleared as usual).  Two outcomes:

* The core re-requests the line before the next miss to the set — the
  request hits in the LLC, updating its replacement state: the LLC
  has *derived* that the line is hot and rescued it ("hot line
  rescue").  The cost is one LLC-latency hit that would have been a
  core-cache hit.
* No re-request arrives in the window — the line is the next victim
  and, because the early invalidation already emptied the core
  caches, its eviction needs no back-invalidate.

ECI traffic scales with LLC *misses* (tiny) instead of core-cache
hits (huge), which is its advantage over TLH; its weakness is the
time window, which QBS removes.
"""

from __future__ import annotations

from ..coherence import MessageType
from .tla import TLAPolicy


class EarlyCoreInvalidation(TLAPolicy):
    """Invalidate the next potential LLC victim early from the cores."""

    name = "eci"

    def __init__(self) -> None:
        super().__init__()
        #: ECIs issued (one per LLC miss fill into a full set).
        self.early_invalidations = 0
        #: ECIs that actually removed a core-resident line.
        self.early_invalidations_hit_core = 0

    def after_llc_miss_fill(
        self, core_id: int, set_index: int, filled_way: int, line_addr: int
    ) -> None:
        hierarchy = self._require_hierarchy()
        llc = hierarchy.llc
        if llc.associativity <= 1:
            return  # no "next" victim exists
        # Only a full set has a next potential victim worth deriving
        # locality for; fills into invalid ways carry no pressure.
        if llc.find_invalid_way(set_index) is not None:
            return
        next_way = llc.policy.select_victim(set_index, exclude={filled_way})
        victim_addr = llc.addr_at(set_index, next_way)
        if victim_addr is None:  # pragma: no cover - excluded above
            return
        # The early invalidate happens "in the shadow of the miss to
        # memory" (Section III.B), so no latency is charged; only the
        # messages are counted.
        self.early_invalidations += 1
        was_present = hierarchy._back_invalidate(
            victim_addr,
            MessageType.ECI_INVALIDATE,
            record_inclusion_victim=False,
            dirty_to_llc=True,
        )
        if was_present:
            self.early_invalidations_hit_core += 1
