"""Query Based Selection (QBS) — paper Section III.C.

When the LLC needs a victim, it queries the core caches about each
candidate.  A candidate resident in any participating core cache is
inferred to have high temporal locality: it is promoted to MRU in the
LLC (extending its lifetime) and the next candidate is examined.  The
first non-resident candidate is evicted.  Because resident lines are
never evicted, inclusion victims among hot lines disappear entirely —
QBS removes ECI's time-window problem.

``max_queries`` reproduces the paper's query-limit study (Section
V.C: limits of 1/2/4/8 give 6.2/6.5/6.6/6.6 % — one or two queries
capture nearly all the benefit because the core caches only cover a
couple of LLC ways).  ``0`` means unbounded.  When the limit is
reached, "the next victim line is selected for replacement and no
further queries are sent".

``back_invalidate=True`` gives the *modified QBS* of footnote 6: the
spared line is still promoted in the LLC but its core copies are
invalidated like ECI.  The paper found it performs like normal QBS,
showing the benefit comes from avoiding memory latency, not from
keeping core-cache hits.

Variants select which cache kinds count as "resident": QBS-IL1,
QBS-DL1, QBS-L1, QBS-L2 and QBS-L1-L2, exactly as in Figure 7.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set

from ..coherence import MessageType
from ..errors import ConfigurationError
from ..telemetry.events import EVENT_QBS_PROMOTE
from .tla import TLAPolicy


class QueryBasedSelection(TLAPolicy):
    """Query the core caches before evicting an LLC victim."""

    name = "qbs"

    def __init__(
        self,
        levels: Iterable[str] = ("il1", "dl1", "l2"),
        max_queries: int = 0,
        back_invalidate: bool = False,
    ) -> None:
        super().__init__()
        self.levels: FrozenSet[str] = frozenset(levels)
        if not self.levels:
            raise ConfigurationError("QBS needs at least one queried level")
        if max_queries < 0:
            raise ConfigurationError("max_queries must be >= 0")
        self.max_queries = max_queries
        self.back_invalidate = back_invalidate
        #: victim candidates spared because a core cache held them.
        self.rejections = 0
        #: selections that exhausted every way and evicted a resident line.
        self.forced_evictions = 0
        #: candidate evaluations performed (for the traffic study).
        self.candidates_examined = 0

    def select_llc_victim(self, core_id: int, set_index: int) -> int:
        hierarchy = self._require_hierarchy()
        llc = hierarchy.llc
        examined: Set[int] = set()
        queries_sent = 0
        while True:
            way, candidate_addr = llc.select_victim(set_index, exclude_ways=examined)
            self.candidates_examined += 1
            if candidate_addr is None:
                return way  # invalid way needs no query
            if self.max_queries and queries_sent >= self.max_queries:
                # Query budget exhausted: take this candidate unqueried.
                return way
            queries_sent += 1
            resident = hierarchy.line_in_core_caches(candidate_addr, self.levels)
            if not resident:
                return way
            # Spare the line: refresh its LLC replacement state.
            llc.promote_way(set_index, way)
            self.rejections += 1
            if hierarchy.tracer is not None:
                hierarchy.tracer.emit(
                    hierarchy.clock,
                    EVENT_QBS_PROMOTE,
                    core=core_id,
                    line=candidate_addr,
                )
            if self.back_invalidate:
                # Modified QBS (footnote 6): behave like ECI towards
                # the core caches while still sparing the LLC copy.
                hierarchy._back_invalidate(
                    candidate_addr,
                    MessageType.ECI_INVALIDATE,
                    record_inclusion_victim=False,
                    dirty_to_llc=True,
                )
            examined.add(way)
            if len(examined) >= llc.associativity:
                # Every way is resident in some core cache; inclusion
                # still demands a victim, so evict the policy's pick.
                self.forced_evictions += 1
                return llc.policy.select_victim(set_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        levels = "+".join(sorted(self.levels))
        return (
            f"<QBS levels={levels} max_queries={self.max_queries or 'inf'}"
            f"{' modified' if self.back_invalidate else ''}>"
        )
