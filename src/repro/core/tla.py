"""Base class / null object for TLA cache-management policies.

The hierarchy calls three hooks:

* :meth:`on_core_cache_hit` — after every core-cache hit (TLH listens);
* :meth:`select_llc_victim` — when the LLC needs a victim and no
  invalid way exists (QBS overrides);
* :meth:`after_llc_miss_fill` — after an LLC miss fill completes
  (ECI overrides to early-invalidate the next potential victim).

The base class implements the baseline behaviour (no hints, plain
policy victim, no post-fill action), so an unadorned hierarchy runs
exactly the paper's baseline inclusive cache.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hierarchy.base import BaseHierarchy


class TLAPolicy:
    """Null TLA policy; subclass and override the relevant hooks."""

    name = "none"

    def __init__(self) -> None:
        self.hierarchy: Optional["BaseHierarchy"] = None

    def attach(self, hierarchy: "BaseHierarchy") -> None:
        """Bind this policy to a hierarchy (called by ``attach_tla``)."""
        self.hierarchy = hierarchy

    def _require_hierarchy(self) -> "BaseHierarchy":
        if self.hierarchy is None:
            raise SimulationError(f"TLA policy {self.name} is not attached")
        return self.hierarchy

    # -- hooks -----------------------------------------------------------------
    def on_core_cache_hit(self, core_id: int, kind: str, line_addr: int) -> None:
        """A hit occurred in ``core_id``'s ``kind`` cache ("il1"/"dl1"/"l2")."""

    def select_llc_victim(self, core_id: int, set_index: int) -> int:
        """Choose the LLC way to evict for a fill into ``set_index``."""
        return self._require_hierarchy().llc.policy.select_victim(set_index)

    def after_llc_miss_fill(
        self, core_id: int, set_index: int, filled_way: int, line_addr: int
    ) -> None:
        """The LLC miss fill for ``line_addr`` just completed."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TLA {self.name}>"
