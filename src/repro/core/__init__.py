"""Temporal Locality Aware (TLA) cache management — the paper's contribution.

Three policies let an inclusive LLC learn the temporal locality that
the core caches hide from it:

* :class:`TemporalLocalityHints` (TLH) — core-cache hits *convey*
  locality by sending replacement-state hints to the LLC (Section
  III.A; a bandwidth-unconstrained limit study).
* :class:`EarlyCoreInvalidation` (ECI) — the LLC *derives* locality by
  invalidating the next potential victim early from the core caches
  and watching for a re-request (Section III.B).
* :class:`QueryBasedSelection` (QBS) — the LLC *infers* locality by
  querying the core caches before evicting; resident lines are spared
  and refreshed (Section III.C).

All three hook :class:`repro.hierarchy.BaseHierarchy` through the
:class:`TLAPolicy` interface and need no new hardware structures, only
messages (which :class:`repro.coherence.TrafficMeter` counts).
"""

from .tla import TLAPolicy
from .tlh import TemporalLocalityHints
from .eci import EarlyCoreInvalidation
from .qbs import QueryBasedSelection
from .factory import make_tla_policy, available_tla_policies

__all__ = [
    "TLAPolicy",
    "TemporalLocalityHints",
    "EarlyCoreInvalidation",
    "QueryBasedSelection",
    "make_tla_policy",
    "available_tla_policies",
]
