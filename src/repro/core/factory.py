"""Build TLA policy instances from :class:`repro.config.TLAConfig`."""

from __future__ import annotations

from typing import List

from ..config import TLAConfig
from ..errors import UnknownPolicyError
from .eci import EarlyCoreInvalidation
from .qbs import QueryBasedSelection
from .tla import TLAPolicy
from .tlh import TemporalLocalityHints


def available_tla_policies() -> List[str]:
    """Names accepted by :func:`make_tla_policy`."""
    return ["none", "tlh", "eci", "qbs"]


def make_tla_policy(config: TLAConfig) -> TLAPolicy:
    """Instantiate the TLA policy described by ``config``.

    Raises:
        UnknownPolicyError: if ``config.policy`` is not a known policy.
    """
    if config.policy == "none":
        return TLAPolicy()
    if config.policy == "tlh":
        return TemporalLocalityHints(
            levels=config.levels,
            sample_rate=config.sample_rate,
            mru_filter=config.mru_filter,
        )
    if config.policy == "eci":
        return EarlyCoreInvalidation()
    if config.policy == "qbs":
        return QueryBasedSelection(
            levels=config.levels,
            max_queries=config.max_queries,
            back_invalidate=config.back_invalidate,
        )
    raise UnknownPolicyError(
        f"unknown TLA policy {config.policy!r}; known: {available_tla_policies()}"
    )
