"""Temporal Locality Hints (TLH) — paper Section III.A.

On every hit in a participating core cache, a non-data hint is sent
to the LLC, which promotes the line in its replacement state.  With
the same temporal information as the core caches, the LLC almost
never chooses a hot line as its victim, eliminating inclusion victims.

The cost is traffic: the hint rate is proportional to core-cache hits
(the paper measures ~600x more LLC requests for TLH-L1, ~8x for
TLH-L2), so the paper treats TLH as a *limit study*.  The
``sample_rate`` knob reproduces the Section V.A sensitivity study in
which only 1 / 2 / 10 / 20 % of L1 hits send hints.

Variants are selected by which cache kinds participate:
TLH-IL1 ``("il1",)``, TLH-DL1 ``("dl1",)``, TLH-L1 ``("il1", "dl1")``,
TLH-L2 ``("l2",)``, TLH-L1-L2 ``("il1", "dl1", "l2")``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..coherence import MessageType
from ..errors import ConfigurationError
from ..telemetry.events import EVENT_TLH_HINT
from .tla import TLAPolicy


class TemporalLocalityHints(TLAPolicy):
    """Send LLC replacement-state hints on core-cache hits."""

    name = "tlh"

    def __init__(
        self,
        levels: Iterable[str] = ("il1", "dl1"),
        sample_rate: float = 1.0,
        mru_filter: bool = False,
    ) -> None:
        super().__init__()
        self.levels: FrozenSet[str] = frozenset(levels)
        if not self.levels:
            raise ConfigurationError("TLH needs at least one participating level")
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError("sample_rate must be in [0, 1]")
        self.sample_rate = sample_rate
        #: only hint on hits to non-MRU lines — MRU hits carry little
        #: new information (the line was hinted very recently) and are
        #: the bulk of the traffic, so this is the paper's suggested
        #: cheap filter.
        self.mru_filter = mru_filter
        # Deterministic sampling: after n eligible hits exactly
        # floor(n * rate) hints have fired — reproducible without an
        # RNG and immune to float-accumulation drift.
        self._eligible_hits = 0
        self._fired = 0
        self.hints_sent = 0
        self.hints_dropped = 0
        #: hints that found (and promoted) their line in the LLC.
        self.hints_applied = 0

    def on_core_cache_hit(self, core_id: int, kind: str, line_addr: int) -> None:
        if kind not in self.levels:
            return
        hierarchy = self._require_hierarchy()
        if self.mru_filter:
            cache = hierarchy.cores[core_id].cache_for_kind(kind)
            if cache.policy.last_hit_was_mru:
                self.hints_dropped += 1
                return
        if self.sample_rate < 1.0:
            self._eligible_hits += 1
            due = int(self._eligible_hits * self.sample_rate + 1e-9)
            if due <= self._fired:
                self.hints_dropped += 1
                return
            self._fired = due
        hierarchy.traffic.record(MessageType.TLH_HINT)
        self.hints_sent += 1
        if hierarchy.tracer is not None:
            hierarchy.tracer.emit(
                hierarchy.clock, EVENT_TLH_HINT, core=core_id, line=line_addr
            )
        if hierarchy.llc.promote(line_addr):
            self.hints_applied += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        levels = "+".join(sorted(self.levels))
        return f"<TLH levels={levels} rate={self.sample_rate}>"
