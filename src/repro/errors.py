"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range.

    Raised eagerly at construction time (e.g. a cache whose size is not
    divisible by ``associativity * line_size``) so that simulations
    never start from an invalid machine description.
    """


class SimulationError(ReproError):
    """An invariant was violated while a simulation was running.

    This always indicates a bug in the simulator (or a hand-built,
    inconsistent hierarchy), never a property of the workload.
    """


class SanitizerError(SimulationError):
    """A CacheSan invariant checker found corrupted hierarchy state.

    Raised in fail-fast mode by :class:`repro.sanitize.HierarchySanitizer`;
    the message carries every violation found in the failing scan, each
    with the set/way/line-address coordinates of the corrupt state.
    """


class InclusionViolationError(SimulationError):
    """A line was found in a core cache but not in an inclusive LLC."""


class ExclusionViolationError(SimulationError):
    """A line was duplicated between levels of an exclusive hierarchy."""


class TraceError(ReproError):
    """A trace record or trace file could not be parsed or generated."""


class ExperimentError(ReproError):
    """An experiment driver was asked for an unknown or invalid run."""


class EvalError(ExperimentError):
    """An evaluation request could not be satisfied.

    Raised by :mod:`repro.eval` when pairing finds no usable runs
    (empty cache, missing baseline policy) or a statistics routine is
    asked for a degenerate computation (no paired samples, bad
    confidence level).
    """


class OrchestrationError(ExperimentError):
    """A parallel sweep could not complete.

    Raised by :class:`repro.orchestrate.Orchestrator` when jobs keep
    failing past their retry budget, or when the worker pool cannot be
    (re)built at all.  The message lists every permanently failed job
    with its final error; partial results stay in the result cache, so
    re-running the sweep only re-executes the failed jobs.
    """


class ExecutorConfigError(OrchestrationError):
    """An execution backend was *misconfigured* by the caller.

    Unknown ``--executor``/``REPRO_EXECUTOR`` kind, a bus backend with
    no spool directory, out-of-range lease/recycling knobs, an execute
    callable the bus cannot ship by reference.  Distinguished from
    environment failures (no subprocesses available on this box,
    unreachable spool directory) so the scheduler can refuse a bad
    configuration loudly instead of silently degrading to serial —
    a user who asked for a distributed sweep must not discover at the
    end that it ran single-threaded because of a typo.
    """


class UnknownPolicyError(ConfigurationError):
    """A replacement or TLA policy name did not match any registered one."""


class ServiceError(ReproError):
    """Base class for errors raised by the ``repro.service`` layer."""


class SweepSpecError(ServiceError):
    """A submitted sweep specification failed validation.

    Raised before any job is admitted, so a bad spec never occupies
    queue capacity; the HTTP layer maps it to ``400 Bad Request`` with
    the validation errors in the response body.
    """


class AdmissionError(ServiceError):
    """The service refused a sweep for capacity reasons (HTTP 429).

    ``retry_after`` is the backpressure hint (seconds) surfaced as the
    ``Retry-After`` response header.  Admission is all-or-nothing: a
    refused sweep admits none of its jobs, so a retried submission is
    idempotent thanks to job-key dedup.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QueueFullError(AdmissionError):
    """The bounded admission queue has no room for the sweep's jobs."""


class QuotaExceededError(AdmissionError):
    """A tenant's queued-jobs or queued-instructions budget is spent."""
