"""Synthetic stand-ins for the paper's 15 SPEC CPU2006 benchmarks.

Table I of the paper characterises 15 benchmarks by their L1/L2/LLC
MPKI in isolation (64 KB L1, 256 KB L2, 2 MB LLC, no prefetching) and
groups them into CCF / LLCF / LLCT categories.  Each
:class:`AppProfile` here parameterises a
:class:`~repro.workloads.synthetic.MixtureProfile` whose working-set
sizes are *fractions of a reference hierarchy's cache sizes*, so the
generated application keeps its category even when experiments scale
every cache down for speed.

The profiles are calibrated to land in the right category band and to
approximate the qualitative shape of Table I (which component of the
hierarchy catches each benchmark's working set), not to match the
absolute MPKI values of binaries we do not have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..config import HierarchyConfig
from ..errors import ConfigurationError
from .categories import CATEGORY_CCF, CATEGORY_LLCF, CATEGORY_LLCT
from .synthetic import MixtureProfile, RegionSpec, mixture_trace
from .trace import TraceRecord, core_address_offset


@dataclass(frozen=True)
class AppProfile:
    """Relative working-set description of one benchmark.

    All ``*_frac`` fields are fractions of the reference cache's line
    count: ``code_frac`` of the L1I, ``hot_frac`` of the L1D,
    ``l2_frac`` of the L2, ``llc_frac``/``huge_frac`` of the LLC.  The
    ``w_*`` fields are data-mixture weights; the hot region receives
    whatever weight remains to 1.0.
    """

    name: str
    full_name: str
    category: str
    code_frac: float = 0.3
    hot_frac: float = 0.5
    #: walk the hot region as a tight cyclic loop instead of sampling
    #: it uniformly — loops fit set-associative L1s without conflict
    #: noise, giving the near-zero L1 MPKI of dealII/perlbench/sjeng.
    hot_sequential: bool = False
    w_l2: float = 0.0
    l2_frac: float = 0.5
    #: consecutive same-line accesses per visit to the L2 pool —
    #: spatial locality that makes pool visits partially L1-visible.
    l2_burst: int = 1
    w_llc: float = 0.0
    llc_frac: float = 0.5
    llc_burst: int = 1
    w_huge: float = 0.0
    huge_frac: float = 3.0
    w_stream: float = 0.0
    write_fraction: float = 0.3
    branch_probability: float = 0.02

    def __post_init__(self) -> None:
        total = self.w_l2 + self.w_llc + self.w_huge + self.w_stream
        if total >= 1.0:
            raise ConfigurationError(
                f"{self.name}: mixture weights leave no room for the hot region"
            )

    @property
    def hot_weight(self) -> float:
        return 1.0 - (self.w_l2 + self.w_llc + self.w_huge + self.w_stream)

    def build_mixture(self, reference: HierarchyConfig) -> MixtureProfile:
        """Instantiate concrete region sizes against ``reference``."""
        regions: List[RegionSpec] = [
            RegionSpec(
                lines=_lines(self.hot_frac, reference.l1d.num_lines),
                weight=self.hot_weight,
                sequential=self.hot_sequential,
            )
        ]
        if self.w_l2 > 0:
            regions.append(
                RegionSpec(
                    lines=_lines(self.l2_frac, reference.l2.num_lines),
                    weight=self.w_l2,
                    burst=self.l2_burst,
                )
            )
        if self.w_llc > 0:
            regions.append(
                RegionSpec(
                    lines=_lines(self.llc_frac, reference.llc.num_lines),
                    weight=self.w_llc,
                    burst=self.llc_burst,
                )
            )
        if self.w_huge > 0:
            regions.append(
                RegionSpec(
                    lines=_lines(self.huge_frac, reference.llc.num_lines),
                    weight=self.w_huge,
                )
            )
        if self.w_stream > 0:
            regions.append(
                RegionSpec(
                    lines=max(1024, 4 * reference.llc.num_lines),
                    weight=self.w_stream,
                    sequential=True,
                )
            )
        return MixtureProfile(
            code_lines=_lines(self.code_frac, reference.l1i.num_lines),
            regions=tuple(regions),
            write_fraction=self.write_fraction,
            branch_probability=self.branch_probability,
            line_size=reference.line_size,
        )


def _lines(fraction: float, reference_lines: int) -> int:
    return max(1, int(round(fraction * reference_lines)))


def _seed_for(name: str, core_id: int, salt: int) -> int:
    """Stable per-(app, core) seed without relying on hash()."""
    value = salt * 1_000_003 + core_id * 7919
    for char in name:
        value = value * 131 + ord(char)
    return value & 0x7FFF_FFFF


#: The 15 benchmarks of Table I, keyed by the paper's 3-letter names.
SPEC_APPS: Dict[str, AppProfile] = {
    app.name: app
    for app in [
        # --- core-cache fitting (CCF) -------------------------------------
        AppProfile(
            "dea", "dealII", CATEGORY_CCF,
            code_frac=0.6, hot_frac=0.4, hot_sequential=True,
            w_l2=0.001, l2_frac=0.6,
        ),
        AppProfile(
            "h26", "h264ref", CATEGORY_CCF,
            code_frac=1.2, hot_frac=0.7,
            w_l2=0.05, l2_frac=0.7, l2_burst=2,
            branch_probability=0.05,
        ),
        AppProfile(
            "per", "perlbench", CATEGORY_CCF,
            code_frac=0.5, hot_frac=0.35, hot_sequential=True,
            w_l2=0.0005, l2_frac=0.4,
        ),
        AppProfile(
            "pov", "povray", CATEGORY_CCF,
            code_frac=0.6, hot_frac=0.6,
            w_l2=0.126, l2_frac=0.5, l2_burst=3,
        ),
        AppProfile(
            "sje", "sjeng", CATEGORY_CCF,
            code_frac=0.8, hot_frac=0.4, hot_sequential=True,
            w_l2=0.0015, l2_frac=0.6,
        ),
        # --- LLC fitting (LLCF) ---------------------------------------------
        AppProfile(
            "ast", "astar", CATEGORY_LLCF,
            code_frac=0.4, hot_frac=0.6,
            w_llc=0.05, llc_frac=0.45,
            w_stream=0.005,
        ),
        AppProfile(
            "bzi", "bzip2", CATEGORY_LLCF,
            code_frac=0.3, hot_frac=0.6,
            w_llc=0.05, llc_frac=0.9,
            w_stream=0.012,
        ),
        AppProfile(
            "cal", "calculix", CATEGORY_LLCF,
            code_frac=0.4, hot_frac=0.6,
            w_llc=0.05, llc_frac=0.35,
            w_stream=0.003,
        ),
        AppProfile(
            "hmm", "hmmer", CATEGORY_LLCF,
            code_frac=0.3, hot_frac=0.5,
            w_l2=0.004, l2_frac=0.6,
            w_llc=0.008, llc_frac=0.5,
        ),
        AppProfile(
            "xal", "xalancbmk", CATEGORY_LLCF,
            code_frac=0.8, hot_frac=0.6,
            w_l2=0.124, l2_frac=0.9, l2_burst=2,
            w_llc=0.006, llc_frac=0.4,
            branch_probability=0.05,
        ),
        # --- LLC thrashing (LLCT) ----------------------------------------------
        AppProfile(
            "gob", "gobmk", CATEGORY_LLCT,
            code_frac=1.5, hot_frac=0.6,
            w_huge=0.022, huge_frac=3.0,
            branch_probability=0.06,
        ),
        AppProfile(
            "lib", "libquantum", CATEGORY_LLCT,
            code_frac=0.1, hot_frac=0.2,
            w_stream=0.104,
            write_fraction=0.25,
        ),
        AppProfile(
            "mcf", "mcf", CATEGORY_LLCT,
            code_frac=0.2, hot_frac=0.5,
            w_huge=0.057, huge_frac=4.0,
        ),
        AppProfile(
            "sph", "sphinx3", CATEGORY_LLCT,
            code_frac=0.4, hot_frac=0.5,
            w_huge=0.012, huge_frac=2.0,
            w_stream=0.035,
        ),
        AppProfile(
            "wrf", "wrf", CATEGORY_LLCT,
            code_frac=0.4, hot_frac=0.5,
            w_l2=0.004, l2_frac=0.5,
            w_stream=0.038,
        ),
    ]
}


def app_names() -> List[str]:
    """The 15 short names, CCF then LLCF then LLCT, alphabetical within."""
    order = {CATEGORY_CCF: 0, CATEGORY_LLCF: 1, CATEGORY_LLCT: 2}
    return sorted(SPEC_APPS, key=lambda n: (order[SPEC_APPS[n].category], n))


def app_profile(name: str) -> AppProfile:
    """Look up a profile by short name (raises on unknown names)."""
    try:
        return SPEC_APPS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; known: {sorted(SPEC_APPS)}"
        ) from None


def app_trace(
    name: str,
    reference: Optional[HierarchyConfig] = None,
    core_id: int = 0,
    seed_salt: int = 1,
) -> Iterator[TraceRecord]:
    """Infinite trace for benchmark ``name``.

    Args:
        reference: hierarchy whose cache sizes define the working
            sets; defaults to the paper's 2-core baseline.  Use the
            *baseline* here even when simulating a different machine —
            Table I's categories are defined against the baseline.
        core_id: offsets the address space so co-running copies do not
            share lines, and perturbs the seed so two copies of the
            same benchmark are not in lockstep.
        seed_salt: extra seed entropy for building disjoint mix sets.
    """
    if reference is None:
        reference = HierarchyConfig()
    profile = app_profile(name)
    mixture = profile.build_mixture(reference)
    return mixture_trace(
        mixture,
        seed=_seed_for(name, core_id, seed_salt),
        base_address=core_address_offset(core_id),
    )
