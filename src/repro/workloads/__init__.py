"""Workload substrate: traces, synthetic generators, SPEC-like profiles.

The paper drives its simulator with PinPoints traces of 15 SPEC
CPU2006 benchmarks chosen to cover three categories (Section IV.B):

* **CCF** — core-cache fitting: working set fits in L1/L2;
* **LLCF** — LLC fitting: working set fits in the LLC;
* **LLCT** — LLC thrashing: working set exceeds the LLC.

We do not have SPEC traces, so :mod:`repro.workloads.spec` provides a
deterministic synthetic generator per benchmark, calibrated to the
same category and the qualitative MPKI profile of Table I.  The
category interaction — CCF applications co-running with LLCT/LLCF
ones suffer inclusion victims — is what every figure in the paper is
built on, and is what the calibration tests pin down.
"""

from .trace import (
    TraceRecord,
    core_address_offset,
    cyclic,
    instruction_count,
    load_trace,
    offset_addresses,
    save_trace,
    take,
)
from .synthetic import (
    MixtureProfile,
    RegionSpec,
    mixture_trace,
    looping_trace,
    strided_trace,
    random_trace,
)
from .categories import (
    CATEGORY_CCF,
    CATEGORY_LLCF,
    CATEGORY_LLCT,
    category_of,
    mix_category,
)
from .spec import (
    SPEC_APPS,
    AppProfile,
    app_names,
    app_profile,
    app_trace,
)
from .mixes import (
    TABLE2_MIXES,
    WorkloadMix,
    all_two_core_mixes,
    mix_by_name,
    random_mixes,
)

__all__ = [
    "TraceRecord",
    "core_address_offset",
    "cyclic",
    "instruction_count",
    "load_trace",
    "offset_addresses",
    "save_trace",
    "take",
    "MixtureProfile",
    "RegionSpec",
    "mixture_trace",
    "looping_trace",
    "strided_trace",
    "random_trace",
    "CATEGORY_CCF",
    "CATEGORY_LLCF",
    "CATEGORY_LLCT",
    "category_of",
    "mix_category",
    "SPEC_APPS",
    "AppProfile",
    "app_names",
    "app_profile",
    "app_trace",
    "TABLE2_MIXES",
    "WorkloadMix",
    "all_two_core_mixes",
    "mix_by_name",
    "random_mixes",
]
