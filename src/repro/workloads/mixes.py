"""Workload mixes: Table II's 12 showcase mixes, all 105 pairs, N-core mixes.

The paper runs all 15-choose-2 = 105 two-benchmark combinations and
showcases 12 of them (Table II).  For the core-count scaling study
(Figure 11) it builds 100 random 4-core and 100 random 8-core mixes;
:func:`random_mixes` reproduces that construction deterministically.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..config import HierarchyConfig
from ..errors import ConfigurationError
from .spec import app_names, app_profile, app_trace
from .trace import TraceRecord


@dataclass(frozen=True)
class WorkloadMix:
    """A named multi-programmed workload (one benchmark per core)."""

    name: str
    apps: Tuple[str, ...]

    def __post_init__(self) -> None:
        for app in self.apps:
            app_profile(app)  # validates the name

    @property
    def num_cores(self) -> int:
        return len(self.apps)

    @property
    def categories(self) -> Tuple[str, ...]:
        return tuple(app_profile(app).category for app in self.apps)

    def traces(
        self, reference: Optional[HierarchyConfig] = None
    ) -> List[Iterator[TraceRecord]]:
        """One infinite trace per core, in disjoint address spaces."""
        return [
            app_trace(app, reference=reference, core_id=core_id)
            for core_id, app in enumerate(self.apps)
        ]

    def label(self) -> str:
        return f"{self.name}({'+'.join(self.apps)})"


#: Table II of the paper, verbatim.
TABLE2_MIXES: Tuple[WorkloadMix, ...] = (
    WorkloadMix("MIX_00", ("bzi", "wrf")),   # LLCF, LLCT
    WorkloadMix("MIX_01", ("dea", "pov")),   # CCF, CCF
    WorkloadMix("MIX_02", ("cal", "gob")),   # LLCF, LLCT
    WorkloadMix("MIX_03", ("h26", "per")),   # CCF, CCF
    WorkloadMix("MIX_04", ("gob", "mcf")),   # LLCT, LLCT
    WorkloadMix("MIX_05", ("h26", "gob")),   # CCF, LLCT
    WorkloadMix("MIX_06", ("hmm", "xal")),   # LLCF, LLCF
    WorkloadMix("MIX_07", ("dea", "wrf")),   # CCF, LLCT
    WorkloadMix("MIX_08", ("bzi", "sje")),   # LLCF, CCF
    WorkloadMix("MIX_09", ("pov", "mcf")),   # CCF, LLCT
    WorkloadMix("MIX_10", ("lib", "sje")),   # LLCT, CCF
    WorkloadMix("MIX_11", ("ast", "pov")),   # LLCF, CCF
)


def mix_by_name(name: str) -> WorkloadMix:
    """Find a Table II mix by name (e.g. ``"MIX_10"``)."""
    for mix in TABLE2_MIXES:
        if mix.name == name:
            return mix
    raise ConfigurationError(
        f"unknown mix {name!r}; known: {[m.name for m in TABLE2_MIXES]}"
    )


def all_two_core_mixes() -> List[WorkloadMix]:
    """All 105 unordered pairs of the 15 benchmarks (paper Section IV.B)."""
    names = app_names()
    mixes = []
    for index, (first, second) in enumerate(itertools.combinations(names, 2)):
        mixes.append(WorkloadMix(f"PAIR_{index:03d}", (first, second)))
    return mixes


def random_mixes(
    num_cores: int, count: int = 100, seed: int = 2010
) -> List[WorkloadMix]:
    """Deterministic random N-core mixes (Figure 11's methodology).

    Benchmarks are drawn with replacement, as in the paper's 4- and
    8-core workload construction.
    """
    if num_cores <= 0:
        raise ConfigurationError("num_cores must be positive")
    if count <= 0:
        raise ConfigurationError("count must be positive")
    rng = random.Random(seed)
    names = app_names()
    mixes = []
    for index in range(count):
        apps = tuple(rng.choice(names) for _ in range(num_cores))
        mixes.append(WorkloadMix(f"RAND{num_cores}C_{index:03d}", apps))
    return mixes


def mixes_with_categories(
    categories: Sequence[str], mixes: Optional[Sequence[WorkloadMix]] = None
) -> List[WorkloadMix]:
    """Filter mixes whose category multiset matches ``categories``."""
    pool = list(mixes) if mixes is not None else all_two_core_mixes()
    wanted = sorted(categories)
    return [mix for mix in pool if sorted(mix.categories) == wanted]
