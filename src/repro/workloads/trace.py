"""Trace records and trace utilities.

A trace is an iterable of :class:`TraceRecord` items.  ``gap`` is the
number of non-memory instructions executed *before* this memory
instruction, so instruction counts are recoverable without storing
every instruction (the paper's traces are Pin memory traces with the
same property).

Records are ``NamedTuple``s: attribute access for readability in
tests and examples, raw-tuple speed in the simulator's hot loop.
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Iterable, Iterator, List, NamedTuple, Union

from ..access import AccessType
from ..errors import TraceError


class TraceRecord(NamedTuple):
    """One memory instruction: ``gap`` plain instructions, then the access."""

    gap: int
    kind: AccessType
    address: int

    @property
    def instructions(self) -> int:
        """Instructions this record accounts for (gap + the access itself)."""
        return self.gap + 1


def take(trace: Iterable[TraceRecord], count: int) -> List[TraceRecord]:
    """Materialise the first ``count`` records of a trace."""
    return list(itertools.islice(trace, count))


def cyclic(records: List[TraceRecord]) -> Iterator[TraceRecord]:
    """Repeat a finite record list forever (for hand-built traces)."""
    if not records:
        raise TraceError("cannot cycle an empty trace")
    return itertools.cycle(records)


def instruction_count(records: Iterable[TraceRecord]) -> int:
    """Total instructions represented by a finite trace."""
    return sum(record.gap + 1 for record in records)


def save_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> int:
    """Write records as ``gap kind address-hex`` lines; returns count."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for record in records:
            handle.write(f"{record.gap} {record.kind.value} {record.address:x}\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a trace written by :func:`save_trace`.

    Raises:
        TraceError: on malformed lines.
    """
    records: List[TraceRecord] = []
    with open(path, "r", encoding="ascii") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise TraceError(f"{path}:{line_no}: expected 3 fields, got {len(parts)}")
            try:
                gap = int(parts[0])
                kind = AccessType(int(parts[1]))
                address = int(parts[2], 16)
            except ValueError as exc:
                raise TraceError(f"{path}:{line_no}: {exc}") from exc
            if gap < 0:
                raise TraceError(f"{path}:{line_no}: negative gap")
            records.append(TraceRecord(gap, kind, address))
    return records


def offset_addresses(
    trace: Iterable[TraceRecord], offset: int
) -> Iterator[TraceRecord]:
    """Shift every address by ``offset`` (to give cores disjoint spaces)."""
    for record in trace:
        yield TraceRecord(record.gap, record.kind, record.address + offset)


def core_address_offset(core_id: int) -> int:
    """Canonical per-core address-space offset (disjoint 1 TB regions).

    Beyond the first two cores the offset also staggers the *low*
    address bits by a large odd line count.  Without this, every
    core's code/hot regions (which share virtual layouts) would map
    onto identical cache sets — on a many-core CMP that artificially
    saturates a handful of LLC sets with permanently core-resident
    lines, something real physical-page allocation never does.  Cores
    0 and 1 keep plain offsets so two-core experiments match the
    original calibration exactly.
    """
    stagger = max(0, core_id - 1) * 977 * 64  # 977 lines, odd stride
    return ((core_id + 1) << 40) + stagger
