"""CLI for generating and inspecting trace files.

Usage::

    python -m repro.workloads list
    python -m repro.workloads generate lib --records 50000 --out lib.trace
    python -m repro.workloads inspect lib.trace

``generate`` materialises a synthetic benchmark's infinite stream into
the portable text format of :mod:`repro.workloads.trace`, so traces
can be archived, diffed, or replayed by external tools; ``inspect``
prints summary statistics of any trace file.

Tabular output (the ``list``/``inspect`` reports) goes to stdout;
diagnostics go through the structured telemetry logger — one JSON
object per stderr line, level-gated by ``REPRO_LOG_LEVEL`` — so
scripted callers can parse outcomes without scraping prose.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import List, Optional

from ..access import AccessType
from ..config import baseline_hierarchy
from ..telemetry import get_logger
from .spec import SPEC_APPS, app_names, app_profile, app_trace
from .trace import instruction_count, load_trace, save_trace, take

log = get_logger("repro.workloads")


def _cmd_list() -> int:
    print(f"{'name':5} {'full name':12} {'category':8}")
    for name in app_names():
        profile = app_profile(name)
        print(f"{name:5} {profile.full_name:12} {profile.category:8}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.app not in SPEC_APPS:
        log.error("unknown_app", app=args.app, hint="try 'list'")
        return 1
    reference = baseline_hierarchy(2, scale=args.scale)
    trace = app_trace(args.app, reference=reference, core_id=args.core)
    records = take(trace, args.records)
    count = save_trace(records, args.out)
    instructions = instruction_count(records)
    log.info(
        "trace_written",
        app=args.app,
        out=args.out,
        records=count,
        instructions=instructions,
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    records = load_trace(args.trace)
    if not records:
        log.error("empty_trace", trace=args.trace)
        return 1
    instructions = instruction_count(records)
    kinds = Counter(record.kind for record in records)
    lines = {record.address >> 6 for record in records}
    print(f"records:            {len(records)}")
    print(f"instructions:       {instructions}")
    print(f"records/1k instr:   {1000.0 * len(records) / instructions:.1f}")
    for kind in AccessType:
        share = kinds.get(kind, 0) / len(records)
        print(f"  {kind.name.lower():7}: {kinds.get(kind, 0)} ({share:.1%})")
    print(f"distinct 64B lines: {len(lines)}")
    print(f"footprint:          {len(lines) * 64 / 1024:.1f} KiB")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the synthetic benchmarks")
    generate = sub.add_parser("generate", help="materialise a trace file")
    generate.add_argument("app", help="benchmark short name (see 'list')")
    generate.add_argument("--records", type=int, default=50_000)
    generate.add_argument("--out", required=True)
    generate.add_argument("--scale", type=float, default=0.0625)
    generate.add_argument("--core", type=int, default=0)
    inspect = sub.add_parser("inspect", help="summarise a trace file")
    inspect.add_argument("trace")
    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list()
    if args.command == "generate":
        return _cmd_generate(args)
    return _cmd_inspect(args)


if __name__ == "__main__":
    sys.exit(main())
