"""Synthetic trace generators.

The generic building block is :func:`mixture_trace`: an infinite,
deterministic stream of :class:`~repro.workloads.trace.TraceRecord`
built from

* an instruction-fetch stream walking a code region (sequential with
  occasional branches), and
* a data stream drawn from a weighted mixture of *regions*, each of
  which is accessed randomly (working-set behaviour) or sequentially
  (streaming behaviour).

Region sizes are expressed in cache lines, so callers size them
relative to a reference hierarchy and the resulting trace lands in a
chosen cache level by construction.  Simpler single-pattern
generators (:func:`looping_trace`, :func:`strided_trace`,
:func:`random_trace`) are provided for tests and examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import repeat as _repeat
from typing import Iterator, List, Optional, Sequence, Tuple

from ..access import AccessType
from ..errors import TraceError
from .trace import TraceRecord

try:  # numpy accelerates batch generation ~4x; plain Python works too.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

#: Default byte bases keeping code, and each data region, far apart.
CODE_BASE = 0x0000_1000_0000
DATA_BASE = 0x0010_0000_0000
REGION_STRIDE = 0x0001_0000_0000


def _exponential_mean_for_floored(target_mean: float) -> float:
    """Exponential mean whose *floored* samples average ``target_mean``.

    Gaps are integer instruction counts drawn as ``int(Exp(m))``;
    flooring shrinks the mean (E[floor(Exp(m))] = 1/(e^(1/m)-1)), so
    the continuous mean is inflated to compensate and instruction
    rates land on target.
    """
    import math

    if target_mean <= 0:
        return 0.0
    return 1.0 / math.log(1.0 + 1.0 / target_mean)


@dataclass(frozen=True)
class RegionSpec:
    """One component of a data-access mixture.

    Attributes:
        lines: region size in cache lines (must be positive).
        weight: relative probability of a data access landing here.
        sequential: walk the region line by line (streaming) instead
            of sampling uniformly (working-set reuse).
        burst: consecutive accesses issued to the same line each time
            the region is selected — models spatial locality within a
            line (several elements touched per visit), which makes the
            visit's later accesses L1 hits.
    """

    lines: int
    weight: float
    sequential: bool = False
    burst: int = 1

    def __post_init__(self) -> None:
        if self.lines <= 0:
            raise TraceError("region must contain at least one line")
        if self.weight < 0:
            raise TraceError("region weight must be non-negative")
        if self.burst <= 0:
            raise TraceError("burst must be positive")


@dataclass(frozen=True)
class MixtureProfile:
    """Full parameterisation of :func:`mixture_trace`.

    Attributes:
        code_lines: instruction-footprint size in lines.
        regions: the data mixture.
        data_per_instruction: loads+stores per instruction (~0.375 for
            SPEC-like code).
        ifetch_per_instruction: new-line fetch rate; 1/16 models 64 B
            lines of 4 B instructions.
        write_fraction: fraction of data accesses that are stores.
        branch_probability: chance an ifetch jumps to a random code
            line instead of the next one.
        line_size: bytes per line (addresses are line-aligned bytes).
    """

    code_lines: int
    regions: Tuple[RegionSpec, ...]
    data_per_instruction: float = 0.375
    ifetch_per_instruction: float = 1.0 / 16.0
    write_fraction: float = 0.3
    branch_probability: float = 0.02
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.code_lines <= 0:
            raise TraceError("code region must contain at least one line")
        if not self.regions:
            raise TraceError("mixture needs at least one data region")
        if sum(r.weight for r in self.regions) <= 0:
            raise TraceError("mixture weights must sum to a positive value")
        if not 0 < self.data_per_instruction <= 1:
            raise TraceError("data_per_instruction must be in (0, 1]")
        if not 0 < self.ifetch_per_instruction <= 1:
            raise TraceError("ifetch_per_instruction must be in (0, 1]")
        if not 0 <= self.write_fraction <= 1:
            raise TraceError("write_fraction must be in [0, 1]")


def mixture_trace(
    profile: MixtureProfile,
    seed: int = 0,
    base_address: int = 0,
    engine: str = "auto",
) -> Iterator[TraceRecord]:
    """Infinite deterministic trace following ``profile``.

    ``base_address`` shifts the whole address space (give each core a
    disjoint base via
    :func:`repro.workloads.trace.core_address_offset`).

    ``engine`` selects the generator implementation: ``"numpy"``
    (batched, ~4x faster), ``"python"`` (stdlib only), or ``"auto"``
    (numpy when available).  Both engines are deterministic for a
    given seed, but their streams differ from each other.
    """
    if engine not in ("auto", "numpy", "python"):
        raise TraceError(f"unknown engine {engine!r}")
    if engine == "numpy" and _np is None:
        raise TraceError("numpy engine requested but numpy is not installed")
    if engine in ("auto", "numpy") and _np is not None:
        return _mixture_trace_numpy(profile, seed, base_address)
    return _mixture_trace_python(profile, seed, base_address)


def _mixture_trace_python(
    profile: MixtureProfile,
    seed: int,
    base_address: int,
) -> Iterator[TraceRecord]:
    """Reference stdlib implementation of :func:`mixture_trace`."""
    rng = random.Random(seed)
    line = profile.line_size
    code_base = base_address + CODE_BASE
    region_bases = [
        base_address + DATA_BASE + i * REGION_STRIDE
        for i in range(len(profile.regions))
    ]
    # Cumulative weights for component selection.
    total_weight = sum(r.weight for r in profile.regions)
    cumulative: List[float] = []
    acc = 0.0
    for region in profile.regions:
        acc += region.weight / total_weight
        cumulative.append(acc)
    cumulative[-1] = 1.0  # guard against float drift

    records_per_instruction = (
        profile.data_per_instruction + profile.ifetch_per_instruction
    )
    mean_gap = max(0.0, 1.0 / records_per_instruction - 1.0)
    exp_mean = _exponential_mean_for_floored(mean_gap)
    p_ifetch = profile.ifetch_per_instruction / records_per_instruction

    code_cursor = 0
    stream_cursors = [0] * len(profile.regions)
    burst_address = 0
    burst_left = 0

    while True:
        gap = int(rng.expovariate(1.0 / exp_mean)) if exp_mean > 0 else 0
        if rng.random() < p_ifetch:
            if rng.random() < profile.branch_probability:
                code_cursor = rng.randrange(profile.code_lines)
            address = code_base + code_cursor * line
            code_cursor = (code_cursor + 1) % profile.code_lines
            yield TraceRecord(gap, AccessType.IFETCH, address)
            continue
        if burst_left > 0:
            burst_left -= 1
            address = burst_address
        else:
            pick = rng.random()
            index = 0
            while cumulative[index] < pick:
                index += 1
            region = profile.regions[index]
            if region.sequential:
                offset = stream_cursors[index]
                stream_cursors[index] = (offset + 1) % region.lines
            else:
                offset = rng.randrange(region.lines)
            address = region_bases[index] + offset * line
            if region.burst > 1:
                burst_address = address
                burst_left = region.burst - 1
        kind = (
            AccessType.STORE
            if rng.random() < profile.write_fraction
            else AccessType.LOAD
        )
        yield TraceRecord(gap, kind, address)


def _mixture_trace_numpy(
    profile: MixtureProfile,
    seed: int,
    base_address: int,
) -> Iterator[TraceRecord]:
    """Batched numpy implementation of :func:`mixture_trace`.

    Draws random variates in blocks of 4096 and assembles records with
    vectorised integer arithmetic; behaviourally equivalent to the
    Python engine (same distributions), though the exact streams
    differ.  The record stream is bit-identical to the historical
    scalar numpy loop (the golden regression digests depend on it);
    ``tests/workloads/test_synthetic_vector.py`` keeps a copy of that
    scalar loop and asserts equivalence.

    The batch is assembled in three passes:

    1. the instruction-fetch cursor is reconstructed in closed form —
       between branches it just counts up modulo the code footprint,
       so each ifetch's cursor is ``(anchor + distance) % code_lines``
       where the anchor is the most recent branch target;
    2. data addresses are gathered in closed form when every region
       has ``burst == 1`` (random offsets by a vectorised multiply,
       sequential streams by a per-region ``arange`` — no Python loop
       at all); bursty mixtures fall back to a *visit* loop with one
       Python iteration per region visit (not per record) and burst
       continuations filled by a C-level slice assignment;
    3. records are materialised with a C-level ``map`` feeding
       ``tuple.__new__`` so no per-record Python bytecode runs at all
       (``TraceRecord._make`` is a Python-level classmethod and would
       cost a frame per record).
    """
    rng = _np.random.RandomState(seed & 0x7FFF_FFFF)
    line = profile.line_size
    code_base = base_address + CODE_BASE
    regions = profile.regions
    region_bases = [
        base_address + DATA_BASE + i * REGION_STRIDE for i in range(len(regions))
    ]
    region_lines = [r.lines for r in regions]
    region_sequential = [r.sequential for r in regions]
    region_burst = [r.burst for r in regions]

    total_weight = sum(r.weight for r in regions)
    cumulative = _np.cumsum([r.weight / total_weight for r in regions])
    cumulative[-1] = 1.0

    records_per_instruction = (
        profile.data_per_instruction + profile.ifetch_per_instruction
    )
    mean_gap = max(0.0, 1.0 / records_per_instruction - 1.0)
    exp_mean = _exponential_mean_for_floored(mean_gap)
    p_ifetch = profile.ifetch_per_instruction / records_per_instruction
    p_branch = profile.branch_probability
    p_write = profile.write_fraction
    code_lines = profile.code_lines

    #: kind lookup by code: 0 = load, 1 = store, 2 = ifetch.
    kind_table = [AccessType.LOAD, AccessType.STORE, AccessType.IFETCH]

    code_cursor = 0
    stream_cursors = [0] * len(regions)
    burst_address = 0
    burst_left = 0
    batch = 4096
    record_new = tuple.__new__
    record_cls = _repeat(TraceRecord)

    # Burst-free mixtures (the common case) admit a fully vectorised
    # data pass; only bursty profiles need the per-visit Python loop.
    all_single_visit = all(b == 1 for b in region_burst)
    lines_arr = _np.array(region_lines, dtype=_np.int64)
    bases_arr = _np.array(region_bases, dtype=_np.int64)
    seq_regions = [i for i, s in enumerate(region_sequential) if s]

    # Per-batch bindings hoisted out of the generation loop (HX2/HX1):
    # bound methods and dtype objects are immutable, and the zero-gap
    # list is only ever read, so one shared instance is safe.
    np_int64 = _np.int64
    np_where = _np.where
    np_flatnonzero = _np.flatnonzero
    np_accumulate = _np.maximum.accumulate
    random_sample = rng.random_sample
    zero_gaps = [0] * batch

    while True:
        if exp_mean > 0:
            gaps = rng.exponential(exp_mean, batch).astype(np_int64).tolist()
        else:
            gaps = zero_gaps
        u_type = random_sample(batch)
        u_branch = random_sample(batch)
        picks = _np.searchsorted(cumulative, random_sample(batch), side="left")
        u_offset = random_sample(batch)
        u_write = random_sample(batch)

        is_ifetch = u_type < p_ifetch
        addresses = _np.empty(batch, dtype=np_int64)

        # -- pass 1: instruction fetches, fully vectorised ------------------
        ifetch_pos = np_flatnonzero(is_ifetch)
        count = len(ifetch_pos)
        if count:
            branched = u_branch[ifetch_pos] < p_branch
            # Branch targets (the scalar loop computes int(u * lines)
            # only on branches; computing it everywhere draws nothing
            # extra and keeps the gather below branch-free).
            targets = (u_offset[ifetch_pos] * code_lines).astype(np_int64)
            idx = _np.arange(count)
            anchor = np_accumulate(np_where(branched, idx, -1))
            has_anchor = anchor >= 0
            base = np_where(
                has_anchor, targets[_np.maximum(anchor, 0)], code_cursor
            )
            rel = np_where(has_anchor, idx - anchor, idx)
            # A branch target is int(u * code_lines) with u < 1, which
            # float rounding can land exactly on code_lines; the scalar
            # loop then emits that out-of-range cursor once and wraps
            # to 0 on the next fetch.  Reproduce both cases exactly.
            cursors = np_where(
                rel == 0,
                base,
                np_where(
                    base >= code_lines,
                    (rel - 1) % code_lines,
                    (base + rel) % code_lines,
                ),
            )
            addresses[ifetch_pos] = code_base + cursors * line
            code_cursor = int(cursors[-1]) + 1
            if code_cursor >= code_lines:
                code_cursor = 0

        # -- pass 2: data accesses ------------------------------------------
        data_pos = _np.flatnonzero(~is_ifetch)
        total = len(data_pos)
        if total and all_single_visit:
            # Closed form: every visit emits exactly one record, so the
            # random offsets are a single vectorised multiply (the same
            # float64 product the scalar loop truncates with ``int``)
            # and each sequential stream is a modular ``arange`` from
            # its carried cursor.
            picks_d = picks[data_pos]
            offsets = (u_offset[data_pos] * lines_arr[picks_d]).astype(
                _np.int64
            )
            for index in seq_regions:
                sel = _np.flatnonzero(picks_d == index)
                visits = len(sel)
                if visits:
                    start = stream_cursors[index]
                    nlines = region_lines[index]
                    offsets[sel] = (start + _np.arange(visits)) % nlines
                    stream_cursors[index] = (start + visits) % nlines
            addresses[data_pos] = bases_arr[picks_d] + offsets * line
        elif total:
            data_addresses = _np.empty(total, dtype=_np.int64)
            picks_d = picks[data_pos].tolist()
            u_offset_d = u_offset[data_pos].tolist()
            cursor = 0
            if burst_left > 0:
                take = burst_left if burst_left < total else total
                data_addresses[:take] = burst_address
                burst_left -= take
                cursor = take
            while cursor < total:
                index = picks_d[cursor]
                if region_sequential[index]:
                    offset = stream_cursors[index]
                    stream_cursors[index] = (offset + 1) % region_lines[index]
                else:
                    offset = int(u_offset_d[cursor] * region_lines[index])
                address = region_bases[index] + offset * line
                burst = region_burst[index]
                if burst > 1:
                    stop = cursor + burst
                    if stop > total:
                        burst_left = stop - total
                        stop = total
                    data_addresses[cursor:stop] = address
                    burst_address = address
                    cursor = stop
                else:
                    data_addresses[cursor] = address
                    cursor += 1
            addresses[data_pos] = data_addresses

        # -- pass 3: C-level record assembly --------------------------------
        kind_codes = _np.where(is_ifetch, 2, u_write < p_write)
        kinds = map(kind_table.__getitem__, kind_codes.tolist())
        yield from map(record_new, record_cls, zip(gaps, kinds, addresses.tolist()))


# -- simple single-pattern generators (tests, examples, figure 3) -------------


def looping_trace(
    lines: int,
    line_size: int = 64,
    kind: AccessType = AccessType.LOAD,
    gap: int = 0,
    base_address: int = 0,
) -> Iterator[TraceRecord]:
    """Loop over ``lines`` consecutive cache lines forever."""
    if lines <= 0:
        raise TraceError("looping_trace needs at least one line")
    cursor = 0
    while True:
        yield TraceRecord(gap, kind, base_address + cursor * line_size)
        cursor = (cursor + 1) % lines


def strided_trace(
    stride_bytes: int,
    count: Optional[int] = None,
    line_size: int = 64,
    kind: AccessType = AccessType.LOAD,
    gap: int = 0,
    base_address: int = 0,
) -> Iterator[TraceRecord]:
    """Monotonic strided stream; infinite when ``count`` is None."""
    if stride_bytes == 0:
        raise TraceError("stride must be non-zero")
    index = 0
    while count is None or index < count:
        yield TraceRecord(gap, kind, base_address + index * stride_bytes)
        index += 1


def random_trace(
    lines: int,
    seed: int = 0,
    line_size: int = 64,
    write_fraction: float = 0.0,
    gap: int = 0,
    base_address: int = 0,
) -> Iterator[TraceRecord]:
    """Uniform random accesses over a region of ``lines`` lines."""
    if lines <= 0:
        raise TraceError("random_trace needs at least one line")
    rng = random.Random(seed)
    while True:
        address = base_address + rng.randrange(lines) * line_size
        kind = (
            AccessType.STORE if rng.random() < write_fraction else AccessType.LOAD
        )
        yield TraceRecord(gap, kind, address)


def interleaved(
    traces: Sequence[Iterator[TraceRecord]], weights: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> Iterator[TraceRecord]:
    """Randomly interleave several traces (weighted, deterministic)."""
    if not traces:
        raise TraceError("need at least one trace to interleave")
    rng = random.Random(seed)
    if weights is None:
        weights = [1.0] * len(traces)
    if len(weights) != len(traces):
        raise TraceError("weights must match traces")
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    cumulative[-1] = 1.0
    while True:
        pick = rng.random()
        index = 0
        while cumulative[index] < pick:
            index += 1
        yield next(traces[index])
