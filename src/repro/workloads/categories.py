"""Working-set categories from paper Section IV.B."""

from __future__ import annotations

from ..errors import ConfigurationError

#: working set fits in the core caches (L1/L2).
CATEGORY_CCF = "CCF"
#: working set fits in the last-level cache.
CATEGORY_LLCF = "LLCF"
#: working set exceeds the last-level cache.
CATEGORY_LLCT = "LLCT"

CATEGORIES = (CATEGORY_CCF, CATEGORY_LLCF, CATEGORY_LLCT)


def category_of(app_name: str) -> str:
    """Category of a Table I benchmark (by its 3-letter short name)."""
    from .spec import app_profile  # local import: spec depends on this module

    return app_profile(app_name).category


def validate_category(category: str) -> str:
    if category not in CATEGORIES:
        raise ConfigurationError(
            f"unknown category {category!r}; expected one of {CATEGORIES}"
        )
    return category
