"""Working-set categories from paper Section IV.B."""

from __future__ import annotations

from ..errors import ConfigurationError

#: working set fits in the core caches (L1/L2).
CATEGORY_CCF = "CCF"
#: working set fits in the last-level cache.
CATEGORY_LLCF = "LLCF"
#: working set exceeds the last-level cache.
CATEGORY_LLCT = "LLCT"

CATEGORIES = (CATEGORY_CCF, CATEGORY_LLCF, CATEGORY_LLCT)


def category_of(app_name: str) -> str:
    """Category of a Table I benchmark (by its 3-letter short name)."""
    from .spec import app_profile  # local import: spec depends on this module

    return app_profile(app_name).category


def mix_category(apps) -> str:
    """Canonical category tag of a multi-programmed mix.

    The per-app Section IV.B categories, sorted and joined with ``+``
    (``("h26", "gob")`` -> ``"CCF+LLCT"``), so two mixes with the same
    category *multiset* share one tag regardless of core order.  This
    is the slicing coordinate :mod:`repro.eval` groups A/B pairs by,
    and what the orchestrator journals next to each job so evaluation
    needs no back-parsing of workload names.
    """
    return "+".join(sorted(category_of(app) for app in apps))


def validate_category(category: str) -> str:
    if category not in CATEGORIES:
        raise ConfigurationError(
            f"unknown category {category!r}; expected one of {CATEGORIES}"
        )
    return category
