"""Shared run machinery for the experiment drivers.

A :class:`Runner` executes (mix, hierarchy-variant) simulations and
memoises results both in memory and on disk, so a figure driver that
shares its baseline runs with another driver — or a re-invoked
benchmark — pays for each simulation exactly once.  Batch submissions
(:meth:`Runner.run_many`) go through :class:`repro.orchestrate.
Orchestrator`, which deduplicates against the same cache and fans the
remaining jobs out over ``settings.jobs`` worker processes.

Scaling: the paper simulates 250 M instructions per benchmark on a
2 MB-LLC machine.  Python cannot afford that per (mix x policy x
figure), so experiments default to a machine scaled by
``ExperimentSettings.scale`` with working sets scaled identically
(see :func:`repro.config.scale_hierarchy`), preserving every capacity
ratio the paper's effects depend on, and to a few hundred thousand
instructions per core with an explicit warm-up window replacing the
paper's cold-start amortisation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional

from ..config import TLAConfig, baseline_hierarchy, tla_preset
from ..errors import ExperimentError
from ..orchestrate import (
    Orchestrator,
    ResultCache,
    RunSummary,
    SimJob,
    SweepManifest,
    execute_job,
    job_key,
)
from ..perf import PhaseTimer
from ..telemetry import TelemetryConfig
from ..workloads import WorkloadMix, all_two_core_mixes

__all__ = [
    "ExperimentSettings",
    "Runner",
    "RunSummary",
    "build_job",
    "cache_key",
]


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs controlling experiment fidelity vs runtime.

    Environment overrides: ``REPRO_SCALE``, ``REPRO_QUOTA``,
    ``REPRO_WARMUP``, ``REPRO_SAMPLE``, ``REPRO_CACHE_DIR``,
    ``REPRO_FULL=1`` (every 105-mix aggregate instead of a sample),
    ``REPRO_JOBS`` (worker processes for batch submissions; 1 =
    serial), ``REPRO_JOB_TIMEOUT`` (seconds per job before a
    worker is killed and the job retried), ``REPRO_EXECUTOR``
    (``serial``/``pool``/``bus`` backend selection; unset keeps the
    jobs-count heuristic), ``REPRO_BUS_DIR`` / ``REPRO_BUS_SPAWN``
    (bus spool directory and how many local bus workers to spawn;
    0 = externally managed workers) and ``REPRO_HOST_PHASES=1``
    (host phase timers on every job; see :mod:`repro.perf`).
    """

    scale: float = 0.0625
    quota: int = 300_000
    warmup: int = 150_000
    #: how many of the 105 two-core mixes the "All" aggregates use.
    sample: int = 24
    full: bool = False
    cache_dir: Optional[str] = ".repro-cache"
    #: worker processes for ``Runner.run_many``; 1 runs in-process.
    jobs: int = 1
    #: per-job timeout in seconds (parallel runs only); None = none.
    job_timeout: Optional[float] = None
    #: execution backend for batch runs: ``serial``, ``pool`` or
    #: ``bus``; None keeps the historical heuristic (serial when
    #: ``jobs <= 1``, the local pool otherwise).
    executor: Optional[str] = None
    #: bus spool directory (required with ``executor="bus"``).
    bus_dir: Optional[str] = None
    #: local bus workers to spawn; None = one per ``jobs``, 0 = rely
    #: on externally started ``python -m repro.orchestrate worker``.
    bus_spawn: Optional[int] = None
    #: telemetry knobs (event tracing / interval series); default off
    #: so settings-driven runs take the exact pre-telemetry path.
    telemetry: TelemetryConfig = TelemetryConfig()
    #: attach host phase timers to every job (``REPRO_HOST_PHASES=1``
    #: or ``--host-phases``); pure host observability, never part of
    #: job identity, default off so hook sites stay on the fast path.
    host_phases: bool = False

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        env = os.environ
        full = env.get("REPRO_FULL", "") not in ("", "0")
        timeout = env.get("REPRO_JOB_TIMEOUT", "")
        return cls(
            scale=float(env.get("REPRO_SCALE", 0.0625)),
            quota=int(env.get("REPRO_QUOTA", 600_000 if full else 300_000)),
            warmup=int(env.get("REPRO_WARMUP", 300_000 if full else 150_000)),
            sample=int(env.get("REPRO_SAMPLE", 105 if full else 24)),
            full=full,
            cache_dir=env.get("REPRO_CACHE_DIR", ".repro-cache"),
            jobs=int(env.get("REPRO_JOBS", 1)),
            job_timeout=float(timeout) if timeout else None,
            executor=env.get("REPRO_EXECUTOR") or None,
            bus_dir=env.get("REPRO_BUS_DIR") or None,
            bus_spawn=(
                int(env["REPRO_BUS_SPAWN"])
                if env.get("REPRO_BUS_SPAWN", "") != ""
                else None
            ),
            telemetry=TelemetryConfig.from_env(),
            host_phases=env.get("REPRO_HOST_PHASES", "") not in ("", "0"),
        )


def cache_key(
    settings: ExperimentSettings,
    mix: WorkloadMix,
    mode: str = "inclusive",
    tla: str = "none",
    llc_bytes: Optional[int] = None,
    tla_config: Optional[TLAConfig] = None,
    quota: Optional[int] = None,
    warmup: Optional[int] = None,
    victim_cache_entries: int = 0,
    intervals: Optional[int] = None,
) -> str:
    """The disk-memo key of one run, computable in any process.

    Thin wrapper over :func:`repro.orchestrate.job_key` — job keys and
    runner cache keys are the same hash by construction, which is what
    lets the orchestrator dedup a sweep against ``.repro-cache``.  The
    key must not depend on dict ordering, hash randomisation or the
    environment (see ``tests/experiments/test_cache_key.py``).
    """
    return job_key(
        build_job(
            settings, mix, mode, tla, llc_bytes, tla_config, quota, warmup,
            victim_cache_entries, intervals,
        )
    )


def build_job(
    settings: ExperimentSettings,
    mix: WorkloadMix,
    mode: str = "inclusive",
    tla: str = "none",
    llc_bytes: Optional[int] = None,
    tla_config: Optional[TLAConfig] = None,
    quota: Optional[int] = None,
    warmup: Optional[int] = None,
    victim_cache_entries: int = 0,
    intervals: Optional[int] = None,
) -> SimJob:
    """Resolve a run request against ``settings`` into a ``SimJob``.

    ``intervals`` (a collector window in cycles) can be requested per
    run — drivers that consume interval series, like the traffic
    study, ask for it explicitly — and otherwise follows the settings'
    telemetry config.
    """
    telemetry = settings.telemetry
    return SimJob(
        mix_name=mix.name,
        apps=tuple(mix.apps),
        mode=mode,
        tla=tla,
        tla_config=tla_config if tla_config is not None else tla_preset(tla),
        llc_bytes=llc_bytes,
        scale=settings.scale,
        quota=quota if quota is not None else settings.quota,
        warmup=warmup if warmup is not None else settings.warmup,
        victim_cache_entries=victim_cache_entries,
        intervals=intervals if intervals is not None else telemetry.interval,
        trace=telemetry.enabled,
        trace_out=telemetry.out_dir if telemetry.enabled else None,
        trace_sample=telemetry.sample,
        trace_categories=telemetry.categories,
        host_phases=settings.host_phases,
    )


#: backwards-compatible alias — ``build_job`` became public when
#: :mod:`repro.eval` started resolving sweep coordinates to job keys.
_build_job = build_job


class Runner:
    """Executes and caches (mix x machine-variant) simulations."""

    #: manifest filename inside the cache directory (resume journal).
    MANIFEST_NAME = "sweep-manifest.jsonl"

    def __init__(
        self,
        settings: Optional[ExperimentSettings] = None,
        reporter=None,
        telemetry=None,
    ) -> None:
        self.settings = settings or ExperimentSettings.from_env()
        #: reference machine the workload generators size against —
        #: always the scaled 2-core baseline, regardless of the
        #: simulated variant (Table I's categories are baseline-relative).
        self.reference = baseline_hierarchy(2, scale=self.settings.scale)
        self.cache = ResultCache(self.settings.cache_dir)
        #: progress sink handed to the orchestrator on batch runs
        #: (anything with start/update/finish, e.g.
        #: :class:`repro.metrics.ProgressReporter`).
        self.reporter = reporter
        #: optional :class:`repro.telemetry.RunTelemetry` receiving
        #: per-run provenance from both the serial and batch paths.
        self.telemetry = telemetry
        #: sweep-level host phase timer (orchestrate_overhead /
        #: execute_job / pool_wait); constructed only when the
        #: settings opt in, so default runs keep every hook dormant.
        self.phase_timer: Optional[PhaseTimer] = (
            PhaseTimer() if self.settings.host_phases else None
        )
        #: host digests from every job this runner executed (serial
        #: and batch paths); cache hits contribute nothing.
        self.host_digests: List[dict] = []

    # -- the workhorse ---------------------------------------------------------
    def run(
        self,
        mix: WorkloadMix,
        mode: str = "inclusive",
        tla: str = "none",
        llc_bytes: Optional[int] = None,
        tla_config: Optional[TLAConfig] = None,
        quota: Optional[int] = None,
        warmup: Optional[int] = None,
        victim_cache_entries: int = 0,
        intervals: Optional[int] = None,
    ) -> RunSummary:
        """Simulate ``mix`` on one machine variant (cached).

        ``tla`` names a preset from :data:`repro.config.TLA_PRESETS`;
        pass ``tla_config`` instead for non-preset variants (query
        limits, hint sampling) together with a unique ``tla`` label.
        ``intervals`` requests a fixed-window telemetry time series on
        the summary (the window in cycles); interval runs cache under
        their own key, so they never shadow plain runs.
        """
        job = build_job(
            self.settings, mix, mode, tla, llc_bytes, tla_config, quota,
            warmup, victim_cache_entries, intervals,
        )
        key = job_key(job)
        cached = self.cache.load(key)
        if cached is not None:
            if self.telemetry is not None:
                self.telemetry.note_cached(key, job.label())
            return cached
        start = self.telemetry.now() if self.telemetry is not None else 0.0
        summary = execute_job(job)
        self.cache.store(key, summary)
        if summary.host:
            self.host_digests.append(summary.host)
        if self.telemetry is not None:
            self.telemetry.note_executed(
                key,
                job.label(),
                "done",
                attempts=1,
                start=start,
                end=self.telemetry.now(),
                telemetry=summary.telemetry,
                host=summary.host,
            )
        return summary

    def run_many(
        self,
        requests: Iterable[Mapping],
        jobs: Optional[int] = None,
    ) -> List[RunSummary]:
        """Execute a batch of run requests, in parallel when configured.

        Each request is a mapping with a ``mix`` entry plus any of
        :meth:`run`'s keyword arguments.  Duplicate requests (and
        requests already satisfied by the cache) cost nothing; the
        rest are fanned out over ``jobs`` worker processes (default
        ``settings.jobs``; 1 executes in-process).  Results come back
        aligned with the request order and are stored in the same
        cache :meth:`run` uses, so drivers can batch first and then
        read individual runs for free.
        """
        sim_jobs = []
        for request in requests:
            request = dict(request)
            try:
                mix = request.pop("mix")
            except KeyError:
                raise ExperimentError(
                    "run_many request needs a 'mix' entry"
                ) from None
            sim_jobs.append(build_job(self.settings, mix, **request))
        orchestrator = Orchestrator(
            jobs=jobs if jobs is not None else self.settings.jobs,
            cache=self.cache,
            manifest=self._manifest(),
            timeout=self.settings.job_timeout,
            reporter=self.reporter,
            telemetry=self.telemetry,
            phase_timer=self.phase_timer,
            executor=self.settings.executor,
            bus_dir=self.settings.bus_dir,
            bus_spawn=self.settings.bus_spawn,
        )
        results = orchestrator.run(sim_jobs)
        self.host_digests.extend(orchestrator.host_digests)
        return [results[job_key(job)] for job in sim_jobs]

    def _manifest(self) -> Optional[SweepManifest]:
        if self.cache.directory is None:
            return None
        return SweepManifest(self.cache.directory / self.MANIFEST_NAME)

    # -- derived measurements -----------------------------------------------------
    def normalized_throughput(
        self,
        mix: WorkloadMix,
        mode: str = "inclusive",
        tla: str = "none",
        base_mode: str = "inclusive",
        base_tla: str = "none",
        llc_bytes: Optional[int] = None,
        tla_config: Optional[TLAConfig] = None,
    ) -> float:
        """Throughput of a variant relative to a baseline on the same mix."""
        variant = self.run(mix, mode, tla, llc_bytes, tla_config)
        baseline = self.run(mix, base_mode, base_tla, llc_bytes)
        if baseline.throughput <= 0:
            raise ExperimentError(f"degenerate baseline for {mix.name}")
        return variant.throughput / baseline.throughput

    def miss_reduction(
        self,
        mix: WorkloadMix,
        mode: str = "inclusive",
        tla: str = "none",
        llc_bytes: Optional[int] = None,
        tla_config: Optional[TLAConfig] = None,
    ) -> float:
        """Fractional LLC-miss reduction vs the inclusive baseline."""
        variant = self.run(mix, mode, tla, llc_bytes, tla_config)
        baseline = self.run(mix, "inclusive", "none", llc_bytes)
        if baseline.llc_misses == 0:
            return 0.0
        return (baseline.llc_misses - variant.llc_misses) / baseline.llc_misses

    def sample_mixes(self, count: Optional[int] = None) -> List[WorkloadMix]:
        """A deterministic, category-stratified sample of the 105 pairs.

        Used for the "All(105)" aggregates when a full sweep is too
        slow; ``REPRO_FULL=1`` returns all 105.
        """
        mixes = all_two_core_mixes()
        count = count if count is not None else self.settings.sample
        if count >= len(mixes):
            return mixes
        # Stride through the (category-ordered) list for coverage.
        stride = len(mixes) / count
        return [mixes[int(i * stride)] for i in range(count)]
