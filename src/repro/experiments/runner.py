"""Shared run machinery for the experiment drivers.

A :class:`Runner` executes (mix, hierarchy-variant) simulations and
memoises results both in memory and on disk, so a figure driver that
shares its baseline runs with another driver — or a re-invoked
benchmark — pays for each simulation exactly once.

Scaling: the paper simulates 250 M instructions per benchmark on a
2 MB-LLC machine.  Python cannot afford that per (mix x policy x
figure), so experiments default to a machine scaled by
``ExperimentSettings.scale`` with working sets scaled identically
(see :func:`repro.config.scale_hierarchy`), preserving every capacity
ratio the paper's effects depend on, and to a few hundred thousand
instructions per core with an explicit warm-up window replacing the
paper's cold-start amortisation.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional

from ..config import (
    SimConfig,
    TLAConfig,
    baseline_hierarchy,
    tla_preset,
)
from ..cpu import CMPSimulator
from ..errors import ExperimentError
from ..version import __version__
from ..workloads import WorkloadMix, all_two_core_mixes

#: Bump when simulator behaviour changes to invalidate stale caches.
_CACHE_SCHEMA = 6


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs controlling experiment fidelity vs runtime.

    Environment overrides: ``REPRO_SCALE``, ``REPRO_QUOTA``,
    ``REPRO_WARMUP``, ``REPRO_SAMPLE``, ``REPRO_CACHE_DIR``,
    ``REPRO_FULL=1`` (every 105-mix aggregate instead of a sample).
    """

    scale: float = 0.0625
    quota: int = 300_000
    warmup: int = 150_000
    #: how many of the 105 two-core mixes the "All" aggregates use.
    sample: int = 24
    full: bool = False
    cache_dir: Optional[str] = ".repro-cache"

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        env = os.environ
        full = env.get("REPRO_FULL", "") not in ("", "0")
        return cls(
            scale=float(env.get("REPRO_SCALE", 0.0625)),
            quota=int(env.get("REPRO_QUOTA", 600_000 if full else 300_000)),
            warmup=int(env.get("REPRO_WARMUP", 300_000 if full else 150_000)),
            sample=int(env.get("REPRO_SAMPLE", 105 if full else 24)),
            full=full,
            cache_dir=env.get("REPRO_CACHE_DIR", ".repro-cache"),
        )


@dataclass
class RunSummary:
    """The slice of a :class:`repro.cpu.SimResult` experiments consume."""

    mix: str
    apps: List[str]
    mode: str
    tla: str
    ipcs: List[float]
    llc_misses: int
    llc_accesses: int
    inclusion_victims: int
    traffic: Dict[str, int]
    max_cycles: float
    instructions: List[int]
    mpki: List[Dict[str, float]]

    @property
    def throughput(self) -> float:
        return sum(self.ipcs)


class Runner:
    """Executes and caches (mix x machine-variant) simulations."""

    def __init__(self, settings: Optional[ExperimentSettings] = None) -> None:
        self.settings = settings or ExperimentSettings.from_env()
        #: reference machine the workload generators size against —
        #: always the scaled 2-core baseline, regardless of the
        #: simulated variant (Table I's categories are baseline-relative).
        self.reference = baseline_hierarchy(2, scale=self.settings.scale)
        self._memory: Dict[str, RunSummary] = {}
        self._disk: Optional[Path] = None
        if self.settings.cache_dir:
            self._disk = Path(self.settings.cache_dir)
            self._disk.mkdir(parents=True, exist_ok=True)

    # -- the workhorse ---------------------------------------------------------
    def run(
        self,
        mix: WorkloadMix,
        mode: str = "inclusive",
        tla: str = "none",
        llc_bytes: Optional[int] = None,
        tla_config: Optional[TLAConfig] = None,
        quota: Optional[int] = None,
        warmup: Optional[int] = None,
        victim_cache_entries: int = 0,
    ) -> RunSummary:
        """Simulate ``mix`` on one machine variant (cached).

        ``tla`` names a preset from :data:`repro.config.TLA_PRESETS`;
        pass ``tla_config`` instead for non-preset variants (query
        limits, hint sampling) together with a unique ``tla`` label.
        """
        settings = self.settings
        quota = quota if quota is not None else settings.quota
        warmup = warmup if warmup is not None else settings.warmup
        tla_cfg = tla_config if tla_config is not None else tla_preset(tla)
        key = self._key(
            mix, mode, tla, llc_bytes, tla_cfg, quota, warmup,
            victim_cache_entries,
        )
        cached = self._load(key)
        if cached is not None:
            return cached

        # llc_bytes is expressed at full (paper) size for readability;
        # baseline_hierarchy applies the uniform scale to every cache.
        hierarchy = baseline_hierarchy(
            num_cores=mix.num_cores,
            llc_bytes=llc_bytes,
            mode=mode,
            tla=tla_cfg,
            scale=settings.scale,
        )
        if victim_cache_entries:
            hierarchy = replace(
                hierarchy, victim_cache_entries=victim_cache_entries
            )
        config = SimConfig(
            hierarchy=hierarchy,
            instruction_quota=quota,
            warmup_instructions=warmup,
        )
        result = CMPSimulator(config, mix.traces(self.reference)).run()
        summary = RunSummary(
            mix=mix.name,
            apps=list(mix.apps),
            mode=mode,
            tla=tla,
            ipcs=result.ipcs,
            llc_misses=result.total_llc_misses,
            llc_accesses=result.total_llc_accesses,
            inclusion_victims=result.total_inclusion_victims,
            traffic=dict(result.traffic),
            max_cycles=result.max_cycles,
            instructions=[core.instructions for core in result.cores],
            mpki=[
                {
                    "l1": core.mpki("l1"),
                    "l1i": core.mpki("l1i"),
                    "l1d": core.mpki("l1d"),
                    "l2": core.mpki("l2"),
                    "llc": core.mpki("llc"),
                }
                for core in result.cores
            ],
        )
        self._store(key, summary)
        return summary

    # -- derived measurements -----------------------------------------------------
    def normalized_throughput(
        self,
        mix: WorkloadMix,
        mode: str = "inclusive",
        tla: str = "none",
        base_mode: str = "inclusive",
        base_tla: str = "none",
        llc_bytes: Optional[int] = None,
        tla_config: Optional[TLAConfig] = None,
    ) -> float:
        """Throughput of a variant relative to a baseline on the same mix."""
        variant = self.run(mix, mode, tla, llc_bytes, tla_config)
        baseline = self.run(mix, base_mode, base_tla, llc_bytes)
        if baseline.throughput <= 0:
            raise ExperimentError(f"degenerate baseline for {mix.name}")
        return variant.throughput / baseline.throughput

    def miss_reduction(
        self,
        mix: WorkloadMix,
        mode: str = "inclusive",
        tla: str = "none",
        llc_bytes: Optional[int] = None,
        tla_config: Optional[TLAConfig] = None,
    ) -> float:
        """Fractional LLC-miss reduction vs the inclusive baseline."""
        variant = self.run(mix, mode, tla, llc_bytes, tla_config)
        baseline = self.run(mix, "inclusive", "none", llc_bytes)
        if baseline.llc_misses == 0:
            return 0.0
        return (baseline.llc_misses - variant.llc_misses) / baseline.llc_misses

    def sample_mixes(self, count: Optional[int] = None) -> List[WorkloadMix]:
        """A deterministic, category-stratified sample of the 105 pairs.

        Used for the "All(105)" aggregates when a full sweep is too
        slow; ``REPRO_FULL=1`` returns all 105.
        """
        mixes = all_two_core_mixes()
        count = count if count is not None else self.settings.sample
        if count >= len(mixes):
            return mixes
        # Stride through the (category-ordered) list for coverage.
        stride = len(mixes) / count
        return [mixes[int(i * stride)] for i in range(count)]

    # -- caching ----------------------------------------------------------------
    def _key(
        self,
        mix: WorkloadMix,
        mode: str,
        tla: str,
        llc_bytes: Optional[int],
        tla_cfg: TLAConfig,
        quota: int,
        warmup: int,
        victim_cache_entries: int = 0,
    ) -> str:
        payload = json.dumps(
            {
                "schema": _CACHE_SCHEMA,
                "version": __version__,
                # keyed by app composition, not mix name, so a Table II
                # mix and the identical PAIR_* mix share one simulation
                "apps": mix.apps,
                "mode": mode,
                "tla": tla,
                "tla_cfg": asdict(tla_cfg),
                "llc_bytes": llc_bytes,
                "scale": self.settings.scale,
                "quota": quota,
                "warmup": warmup,
                "vc": victim_cache_entries,
            },
            sort_keys=True,
            default=list,
        )
        return hashlib.sha1(payload.encode()).hexdigest()

    def _load(self, key: str) -> Optional[RunSummary]:
        if key in self._memory:
            return self._memory[key]
        if self._disk is None:
            return None
        path = self._disk / f"{key}.json"
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            summary = RunSummary(**data)
        except (ValueError, TypeError):
            return None  # stale/corrupt cache entry; recompute
        self._memory[key] = summary
        return summary

    def _store(self, key: str, summary: RunSummary) -> None:
        self._memory[key] = summary
        if self._disk is not None:
            path = self._disk / f"{key}.json"
            path.write_text(json.dumps(asdict(summary)))
