"""Secondary studies: fairness metrics (footnote 5) and snoop cost.

``fairness_study`` reproduces the paper's footnote 5: "We compared the
performance of the TLA policies on both the weighted speedup and
hmean-fairness metrics.  Since the TLA policies do not introduce any
fairness issues, they perform similar to the throughput metric."

``snoop_study`` quantifies the motivation of Sections I-II: what the
snoop filter that inclusion provides is worth, i.e. how many core
probes a non-inclusive hierarchy would need for the same miss stream
— the cost QBS avoids paying while matching non-inclusive
performance.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import MB
from ..metrics import format_table, geomean, hmean_fairness, weighted_speedup
from ..workloads import TABLE2_MIXES, WorkloadMix
from .runner import Runner


def fairness_study(runner: Optional[Runner] = None) -> Dict:
    """Compare QBS gains under throughput, weighted speedup, hmean.

    Shape target: all three metrics agree on the sign and rough size
    of the QBS improvement for every showcase mix (no fairness issues
    are introduced), matching footnote 5.
    """
    runner = runner or Runner()
    apps = sorted({app for mix in TABLE2_MIXES for app in mix.apps})
    runner.run_many(
        [
            dict(mix=WorkloadMix(f"ISO_{app}", (app,)), llc_bytes=2 * MB)
            for app in apps
        ]
        + [
            dict(mix=mix, mode="inclusive", tla=tla)
            for mix in TABLE2_MIXES
            for tla in ("none", "qbs")
        ]
    )
    isolated: Dict[str, float] = {}

    def isolated_ipc(app: str) -> float:
        if app not in isolated:
            mix = WorkloadMix(f"ISO_{app}", (app,))
            isolated[app] = runner.run(mix, llc_bytes=2 * MB).ipcs[0]
        return isolated[app]

    per_mix: Dict[str, Dict[str, float]] = {}
    for mix in TABLE2_MIXES:
        base = runner.run(mix, "inclusive", "none")
        qbs = runner.run(mix, "inclusive", "qbs")
        iso = [isolated_ipc(app) for app in mix.apps]
        per_mix[mix.name] = {
            "throughput_gain": qbs.throughput / base.throughput,
            "weighted_speedup_gain": (
                weighted_speedup(qbs.ipcs, iso) / weighted_speedup(base.ipcs, iso)
            ),
            "hmean_fairness_gain": (
                hmean_fairness(qbs.ipcs, iso) / hmean_fairness(base.ipcs, iso)
            ),
        }
    aggregate = {
        metric: geomean([v[metric] for v in per_mix.values()])
        for metric in (
            "throughput_gain",
            "weighted_speedup_gain",
            "hmean_fairness_gain",
        )
    }
    rows = [
        [name, v["throughput_gain"], v["weighted_speedup_gain"],
         v["hmean_fairness_gain"]]
        for name, v in per_mix.items()
    ]
    rows.append(["All", aggregate["throughput_gain"],
                 aggregate["weighted_speedup_gain"],
                 aggregate["hmean_fairness_gain"]])
    report = format_table(
        ["mix", "throughput", "weighted speedup", "hmean fairness"],
        rows,
        title="Footnote 5 (reproduced): QBS gain under three metrics",
    )
    return {"per_mix": per_mix, "aggregate": aggregate, "report": report}


def snoop_study(runner: Optional[Runner] = None) -> Dict:
    """Count the core probes inclusion's snoop filtering avoids.

    An inclusive LLC answers every miss without touching the cores; a
    non-inclusive LLC must probe every core on every miss (no
    guarantee of absence).  QBS keeps the inclusive guarantee, so its
    probe count stays zero while its performance matches
    non-inclusion — the paper's whole point.
    """
    runner = runner or Runner()
    runner.run_many(
        [
            dict(mix=mix, mode=mode, tla=tla)
            for mix in TABLE2_MIXES
            for mode, tla in (("non_inclusive", "none"), ("inclusive", "qbs"))
        ]
    )
    rows = []
    totals = {"non_inclusive_probes": 0, "qbs_extra_messages": 0, "instructions": 0}
    for mix in TABLE2_MIXES:
        ni = runner.run(mix, "non_inclusive", "none")
        qbs = runner.run(mix, "inclusive", "qbs")
        num_cores = len(mix.apps)
        ni_probes = ni.llc_misses * num_cores
        qbs_messages = (
            qbs.traffic["qbs_query"] + qbs.traffic["back_invalidate"]
        )
        instructions = sum(ni.instructions)
        rows.append(
            [
                mix.name,
                ni_probes,
                1000.0 * ni_probes / max(1, instructions),
                qbs_messages,
                1000.0 * qbs_messages / max(1, instructions),
            ]
        )
        totals["non_inclusive_probes"] += ni_probes
        totals["qbs_extra_messages"] += qbs_messages
        totals["instructions"] += instructions
    report = format_table(
        ["mix", "NI snoop probes", "per kilo-instr", "QBS messages",
         "per kilo-instr"],
        rows,
        title=(
            "Snoop-filter study: probes a non-inclusive LLC needs vs the "
            "messages QBS adds while keeping the filter"
        ),
    )
    return {"rows": rows, "totals": totals, "report": report}
