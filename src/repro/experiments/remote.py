"""Run experiments against a ``repro.service`` instance over HTTP.

:class:`ServiceClient` is a thin stdlib (``urllib``) client for the
service API; :class:`RemoteRunner` plugs it under the experiment
drivers as a drop-in :class:`~repro.experiments.runner.Runner`, so
``python -m repro.experiments --submit URL figure7`` produces exactly
the table a local run would — every simulation is just executed (and
memoized) server-side.

The dedup contract: the client resolves run requests into fully
explicit :class:`~repro.orchestrate.SimJob` objects with the *same*
``_build_job`` the local path uses, serialises their identity knobs
with :func:`~repro.service.schemas.job_to_dict`, and the server
reconstructs jobs whose :func:`~repro.orchestrate.job_key` matches the
client's.  Results fetched back are the cache's own JSON shape, so the
server's ``.repro-cache`` entries are byte-identical to local ones.

Remote submission always runs untraced: event tracing and host phase
attribution are host-side observability that belongs to the machine
doing the executing, so those knobs are stripped before serialisation
(they never join the job key anyway).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..errors import (
    AdmissionError,
    ExperimentError,
    ServiceError,
    SweepSpecError,
)
from ..obs import new_trace_id
from ..orchestrate import ResultCache, RunSummary, SimJob, job_key
from ..service.broker import SWEEP_RUNNING
from ..service.schemas import job_to_dict
from ..telemetry import get_logger
from .runner import Runner, _build_job

log = get_logger("repro.experiments.remote")

#: terminal per-job states that carry a fetchable result.
_OK_STATES = frozenset({"done", "cached"})


class ServiceClient:
    """Minimal HTTP client for the ``repro.service`` API."""

    def __init__(
        self,
        base_url: str,
        tenant: Optional[str] = None,
        timeout: float = 30.0,
        trace_id: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout
        #: client-minted trace id sent as ``X-Repro-Trace`` on every
        #: request, so the server's access log, spans, and manifest
        #: entries all join back to this client session.
        self.trace_id = trace_id if trace_id is not None else new_trace_id()

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict[str, Any]:
        headers = {"Content-Type": "application/json"}
        if self.tenant:
            headers["X-Repro-Tenant"] = self.tenant
        if self.trace_id:
            headers["X-Repro-Trace"] = self.trace_id
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=json.dumps(body).encode() if body is not None else None,
            headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            try:
                message = json.loads(payload).get("error", "")
            except ValueError:
                message = payload.decode(errors="replace")
            if exc.code == 400:
                raise SweepSpecError(message) from exc
            if exc.code == 429:
                raise AdmissionError(message) from exc
            raise ServiceError(
                f"{method} {path} -> HTTP {exc.code}: {message}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from exc

    # -- API calls -------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def submit_jobs(self, jobs: List[SimJob]) -> Dict[str, Any]:
        """POST a fully-resolved job list; returns the sweep snapshot."""
        body = {"jobs": [job_to_dict(job) for job in jobs]}
        return self._request("POST", "/v1/sweeps", body)["sweep"]

    def sweep(self, sweep_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/sweeps/{sweep_id}")["sweep"]

    def cancel(self, sweep_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/sweeps/{sweep_id}")

    def result(self, key: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{key}/result")

    def wait(
        self,
        sweep_id: str,
        poll_s: float = 0.25,
        timeout: Optional[float] = None,
        on_progress=None,
    ) -> Dict[str, Any]:
        """Poll until the sweep leaves the running state.

        ``on_progress`` (snapshot -> None) fires once per poll; raises
        :class:`ServiceError` if ``timeout`` seconds pass first.
        """
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        while True:
            snapshot = self.sweep(sweep_id)
            if on_progress is not None:
                on_progress(snapshot)
            if snapshot["state"] != SWEEP_RUNNING:
                return snapshot
            if deadline is not None and time.perf_counter() > deadline:
                raise ServiceError(
                    f"sweep {sweep_id} still running after {timeout}s"
                )
            time.sleep(poll_s)


class RemoteRunner(Runner):
    """A :class:`Runner` whose simulations execute on a service.

    The local result cache is memory-only: a remote run must observe
    the *server's* memoization, not shortcut through whatever stale
    ``.repro-cache`` happens to sit in the client's working directory.
    Within one process, repeated requests for the same key are still
    free (the memory tier memoizes fetched results).
    """

    def __init__(
        self,
        url: str,
        settings=None,
        reporter=None,
        telemetry=None,
        tenant: Optional[str] = None,
        poll_s: float = 0.25,
    ) -> None:
        super().__init__(settings, reporter=reporter, telemetry=telemetry)
        self.client = ServiceClient(url, tenant=tenant)
        self.cache = ResultCache(None)
        self.poll_s = poll_s

    # -- execution over HTTP ---------------------------------------------------
    def run(
        self,
        mix,
        mode: str = "inclusive",
        tla: str = "none",
        llc_bytes=None,
        tla_config=None,
        quota=None,
        warmup=None,
        victim_cache_entries: int = 0,
        intervals=None,
    ) -> RunSummary:
        job = _wire_job(
            _build_job(
                self.settings, mix, mode, tla, llc_bytes, tla_config,
                quota, warmup, victim_cache_entries, intervals,
            )
        )
        return self._run_remote([job])[0]

    def run_many(
        self, requests: Iterable[Mapping], jobs=None
    ) -> List[RunSummary]:
        sim_jobs = []
        for request in requests:
            request = dict(request)
            try:
                mix = request.pop("mix")
            except KeyError:
                raise ExperimentError(
                    "run_many request needs a 'mix' entry"
                ) from None
            sim_jobs.append(
                _wire_job(_build_job(self.settings, mix, **request))
            )
        return self._run_remote(sim_jobs)

    def _run_remote(self, sim_jobs: List[SimJob]) -> List[RunSummary]:
        keys = [job_key(job) for job in sim_jobs]
        missing = {}
        for key, job in zip(keys, sim_jobs):
            if self.cache.load(key) is None:
                missing.setdefault(key, job)
        if missing:
            self._submit_and_fetch(list(missing.values()))
        results = []
        for key in keys:
            summary = self.cache.load(key)
            if summary is None:  # _submit_and_fetch raises first, but be safe
                raise ExperimentError(f"no remote result for job {key}")
            results.append(summary)
        return results

    def _submit_and_fetch(self, jobs: List[SimJob]) -> None:
        sweep = self.client.submit_jobs(jobs)
        log.info(
            "sweep_submitted",
            sweep=sweep["id"],
            total=sweep["total"],
            url=self.client.base_url,
            trace_id=self.client.trace_id,
        )
        if self.reporter is not None:
            self.reporter.start(
                sweep["total"], cached=sweep["counts"].get("cached", 0)
            )
        final = self.client.wait(
            sweep["id"], poll_s=self.poll_s, on_progress=self._on_progress
        )
        if self.reporter is not None:
            self.reporter.finish()
        bad = [
            f"{entry['label'] or entry['key']}: "
            f"{entry.get('error', entry['status'])}"
            for entry in final["jobs"]
            if entry["status"] not in _OK_STATES
        ]
        if bad:
            raise ExperimentError(
                f"remote sweep {final['id']} failed: " + "; ".join(bad)
            )
        for entry in final["jobs"]:
            payload = self.client.result(entry["key"])
            self.cache.store(entry["key"], RunSummary(**payload))

    def _on_progress(self, snapshot: Dict[str, Any]) -> None:
        if self.reporter is None:
            return
        counts = snapshot["counts"]
        self.reporter.update(
            completed=counts.get("done", 0) + counts.get("cached", 0),
            failed=counts.get("failed", 0) + counts.get("cancelled", 0),
            running=counts.get("running", 0),
            workers=0,
        )


def _wire_job(job: SimJob) -> SimJob:
    """Strip host-side observability so the job matches its wire form."""
    if not (job.trace or job.host_phases or job.trace_out):
        return job
    return replace(
        job,
        trace=False,
        trace_out=None,
        trace_sample=1,
        trace_categories=(),
        host_phases=False,
    )
