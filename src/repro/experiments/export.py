"""Export experiment results to JSON / CSV for external plotting.

The drivers return nested dicts; these helpers flatten them into
spreadsheet-shaped rows so figures can be re-plotted with any tool::

    from repro.experiments import figure7, export
    result = figure7()
    export.to_csv(export.flatten_per_mix(result["per_mix"]), "fig7.csv")
    export.to_json(result, "fig7.json")
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from ..errors import ExperimentError

PathLike = Union[str, Path]


def flatten_per_mix(
    per_mix: Mapping[str, Mapping[str, float]],
    key_column: str = "mix",
) -> List[Dict[str, object]]:
    """Turn ``{mix: {variant: value}}`` into a list of row dicts."""
    rows: List[Dict[str, object]] = []
    for mix, values in per_mix.items():
        row: Dict[str, object] = {key_column: mix}
        row.update(values)
        rows.append(row)
    return rows


def flatten_series(
    series: Mapping[str, Mapping[str, float]],
    key_column: str = "policy",
) -> List[Dict[str, object]]:
    """Turn ``{policy: {x_label: value}}`` (ratio/core sweeps) into rows."""
    return flatten_per_mix(series, key_column=key_column)


def to_csv(rows: Sequence[Mapping[str, object]], path: PathLike) -> int:
    """Write row dicts as CSV; returns the number of data rows."""
    rows = list(rows)
    if not rows:
        raise ExperimentError("nothing to export")
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def to_json(result: Mapping[str, object], path: PathLike) -> None:
    """Dump a driver result as JSON (the ``report`` string included)."""
    serialisable = {
        key: value
        for key, value in result.items()
        if _is_jsonable(value)
    }
    Path(path).write_text(json.dumps(serialisable, indent=2, default=_coerce))


def _coerce(value: object) -> object:
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    raise TypeError(f"not JSON-serialisable: {type(value)!r}")


def _is_jsonable(value: object) -> bool:
    try:
        json.dumps(value, default=_coerce)
    except (TypeError, ValueError):
        return False
    return True
