"""Drivers for every figure of the paper's evaluation section.

Each driver returns a dict with the structured series it computed and
a human-readable ``report``.  Normalisations follow the paper:
throughput (sum of IPCs) relative to the baseline inclusive hierarchy
of the same geometry, geometric means for "All" aggregates, and
LLC-miss reductions for the cache-performance figure.

Drivers submit their whole simulation grid up front through
:meth:`Runner.run_many` (variants *and* the baselines they normalise
against), so the orchestrator can deduplicate it against the cache
and fan it out over ``REPRO_JOBS`` workers; the aggregation loops
below then read every run from the cache for free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import MB, TLAConfig
from ..metrics import format_barchart, format_scurve, format_table, geomean
from ..telemetry import DEFAULT_INTERVAL
from ..workloads import TABLE2_MIXES, WorkloadMix, random_mixes
from .runner import Runner

#: llc sizes (full-scale bytes) for the ratio sweeps; the paper labels
#: them by the summed-L2:LLC ratio of the 2-core CMP (512 KB of L2s).
RATIO_SWEEP = {
    "1:2": 1 * MB,
    "1:4": 2 * MB,
    "1:8": 4 * MB,
    "1:16": 8 * MB,
}

#: default mixes for the ratio sweeps (Figures 2 and 10).  The sweep
#: multiplies mixes x ratios x policies, so by default it uses the
#: six showcase mixes where a CCF or LLCF application is exposed to
#: LLC pressure — the configurations whose behaviour the figures are
#: about.  Pass ``mixes=...`` (e.g. all of TABLE2_MIXES) for more.
RATIO_SWEEP_MIX_NAMES = (
    "MIX_05", "MIX_07", "MIX_08", "MIX_09", "MIX_10", "MIX_11",
)


def _ratio_sweep_mixes() -> List[WorkloadMix]:
    from ..workloads import mix_by_name

    return [mix_by_name(name) for name in RATIO_SWEEP_MIX_NAMES]


def _norm(
    runner: Runner,
    mix: WorkloadMix,
    mode: str,
    tla: str = "none",
    llc_bytes: Optional[int] = None,
    tla_config: Optional[TLAConfig] = None,
) -> float:
    return runner.normalized_throughput(
        mix, mode=mode, tla=tla, llc_bytes=llc_bytes, tla_config=tla_config
    )


def _geomean_over(
    runner: Runner,
    mixes: Sequence[WorkloadMix],
    mode: str,
    tla: str = "none",
    llc_bytes: Optional[int] = None,
    tla_config: Optional[TLAConfig] = None,
) -> float:
    return geomean(
        [_norm(runner, mix, mode, tla, llc_bytes, tla_config) for mix in mixes]
    )


def figure2(
    runner: Optional[Runner] = None,
    mixes: Optional[Sequence[WorkloadMix]] = None,
) -> Dict:
    """Figure 2 — non-inclusive/exclusive vs inclusive across ratios.

    Shape targets: both alternatives beat inclusion; the gap shrinks
    as the LLC grows and is near zero by 1:8.
    """
    runner = runner or Runner()
    mixes = list(mixes) if mixes is not None else _ratio_sweep_mixes()
    runner.run_many(
        [
            dict(mix=mix, mode=mode, llc_bytes=llc_bytes)
            for llc_bytes in RATIO_SWEEP.values()
            for mix in mixes
            for mode in ("inclusive", "non_inclusive", "exclusive")
        ]
    )
    series: Dict[str, Dict[str, float]] = {"non_inclusive": {}, "exclusive": {}}
    for label, llc_bytes in RATIO_SWEEP.items():
        series["non_inclusive"][label] = _geomean_over(
            runner, mixes, "non_inclusive", llc_bytes=llc_bytes
        )
        series["exclusive"][label] = _geomean_over(
            runner, mixes, "exclusive", llc_bytes=llc_bytes
        )
    report = format_table(
        ["hierarchy"] + list(RATIO_SWEEP),
        [
            [name] + [values[label] for label in RATIO_SWEEP]
            for name, values in series.items()
        ],
        title="Figure 2 (reproduced): geomean throughput vs inclusive, by ratio",
    )
    return {"series": series, "ratios": list(RATIO_SWEEP), "report": report}


def figure5(
    runner: Optional[Runner] = None,
    include_sampling: bool = True,
) -> Dict:
    """Figure 5 — Temporal Locality Hints (limit study).

    Shape targets: TLH-L1 is roughly the sum of TLH-IL1 and TLH-DL1
    and bridges most of the inclusive->non-inclusive gap; TLH-L2
    bridges less; CCF+CCF and LLCT/LLCF-only mixes gain nothing.
    Includes the Section V.A sensitivity study where only 1/2/10/20 %
    of L1 hits send hints.
    """
    runner = runner or Runner()
    variants = ["tlh-il1", "tlh-dl1", "tlh-l1", "tlh-l2", "tlh-l1-l2"]
    sample = runner.sample_mixes()
    sampling_rates = (0.01, 0.02, 0.10, 0.20) if include_sampling else ()
    requests = [
        dict(mix=mix, mode="inclusive", tla=variant)
        for mix in TABLE2_MIXES
        for variant in variants
    ]
    requests += [
        dict(mix=mix, mode=mode, tla="none")
        for mix in list(TABLE2_MIXES) + sample
        for mode in ("inclusive", "non_inclusive")
    ]
    requests += [
        dict(mix=mix, mode="inclusive", tla=variant)
        for mix in sample
        for variant in ("tlh-l1", "tlh-l2", "tlh-l1-l2")
    ]
    requests += [
        dict(
            mix=mix,
            mode="inclusive",
            tla=f"tlh-l1-s{rate}",
            tla_config=TLAConfig(
                policy="tlh", levels=("il1", "dl1"), sample_rate=rate
            ),
        )
        for rate in sampling_rates
        for mix in TABLE2_MIXES
    ]
    runner.run_many(requests)
    per_mix: Dict[str, Dict[str, float]] = {}
    for mix in TABLE2_MIXES:
        per_mix[mix.name] = {
            variant: _norm(runner, mix, "inclusive", variant)
            for variant in variants
        }
        per_mix[mix.name]["non_inclusive"] = _norm(runner, mix, "non_inclusive")
    aggregate = {
        variant: _geomean_over(runner, sample, "inclusive", variant)
        for variant in ("tlh-l1", "tlh-l2", "tlh-l1-l2")
    }
    aggregate["non_inclusive"] = _geomean_over(runner, sample, "non_inclusive")
    scurves = {
        variant: sorted(
            _norm(runner, mix, "inclusive", variant) for mix in sample
        )
        for variant in ("tlh-l1", "tlh-l2")
    }
    scurves["non_inclusive"] = sorted(
        _norm(runner, mix, "non_inclusive") for mix in sample
    )
    sampling: Dict[str, float] = {}
    for rate in sampling_rates:
        config = TLAConfig(
            policy="tlh", levels=("il1", "dl1"), sample_rate=rate
        )
        sampling[f"{rate:.0%}"] = _geomean_over(
            runner,
            list(TABLE2_MIXES),
            "inclusive",
            f"tlh-l1-s{rate}",
            tla_config=config,
        )
    rows = [
        [name] + [values[v] for v in variants] + [values["non_inclusive"]]
        for name, values in per_mix.items()
    ]
    rows.append(
        ["All"]
        + [aggregate.get(v, float("nan")) for v in variants]
        + [aggregate["non_inclusive"]]
    )
    report = format_table(
        ["mix"] + variants + ["non-incl"],
        rows,
        title="Figure 5 (reproduced): TLH throughput vs inclusive baseline",
    )
    if sampling:
        report += "\nHint sampling (showcase geomean): " + ", ".join(
            f"{rate}->{value:.3f}" for rate, value in sampling.items()
        )
    report += "\n\n" + format_scurve(scurves["tlh-l1"], "TLH-L1", width=40)
    return {
        "per_mix": per_mix,
        "aggregate": aggregate,
        "scurves": scurves,
        "sampling": sampling,
        "report": report,
    }


def figure6(runner: Optional[Runner] = None) -> Dict:
    """Figure 6 — Early Core Invalidation.

    Shape targets: ECI bridges roughly half the gap on CCF+LLCT/LLCF
    mixes; the worst-case mix loses only marginally.
    """
    runner = runner or Runner()
    sample = runner.sample_mixes()
    runner.run_many(
        [
            dict(mix=mix, mode=mode, tla=tla)
            for mix in list(TABLE2_MIXES) + sample
            for mode, tla in (
                ("inclusive", "none"),
                ("inclusive", "eci"),
                ("non_inclusive", "none"),
            )
        ]
    )
    per_mix = {
        mix.name: {
            "eci": _norm(runner, mix, "inclusive", "eci"),
            "non_inclusive": _norm(runner, mix, "non_inclusive"),
        }
        for mix in TABLE2_MIXES
    }
    aggregate = {
        "eci": _geomean_over(runner, sample, "inclusive", "eci"),
        "non_inclusive": _geomean_over(runner, sample, "non_inclusive"),
    }
    scurve = sorted(_norm(runner, mix, "inclusive", "eci") for mix in sample)
    rows = [
        [name, v["eci"], v["non_inclusive"]] for name, v in per_mix.items()
    ]
    rows.append(["All", aggregate["eci"], aggregate["non_inclusive"]])
    report = format_table(
        ["mix", "ECI", "non-incl"],
        rows,
        title="Figure 6 (reproduced): ECI throughput vs inclusive baseline",
    )
    report += "\n\n" + format_scurve(scurve, "ECI", width=40)
    return {
        "per_mix": per_mix,
        "aggregate": aggregate,
        "scurve": scurve,
        "report": report,
    }


def figure7(
    runner: Optional[Runner] = None,
    include_query_limits: bool = True,
) -> Dict:
    """Figure 7 — Query Based Selection.

    Shape targets: QBS-IL1 >= QBS-DL1 on average; QBS-L1 additive of
    the two; QBS (L1+L2) matches or beats non-inclusion; one or two
    queries capture nearly all of the unbounded-QBS benefit.
    """
    runner = runner or Runner()
    variants = ["qbs-il1", "qbs-dl1", "qbs-l1", "qbs-l2", "qbs"]
    sample = runner.sample_mixes()
    limit_values = (1, 2, 4, 8) if include_query_limits else ()
    requests = [
        dict(mix=mix, mode="inclusive", tla=variant)
        for mix in list(TABLE2_MIXES) + sample
        for variant in variants
    ]
    requests += [
        dict(mix=mix, mode=mode, tla="none")
        for mix in list(TABLE2_MIXES) + sample
        for mode in ("inclusive", "non_inclusive")
    ]
    requests += [
        dict(
            mix=mix,
            mode="inclusive",
            tla=f"qbs-q{limit}",
            tla_config=TLAConfig(
                policy="qbs", levels=("il1", "dl1", "l2"), max_queries=limit
            ),
        )
        for limit in limit_values
        for mix in TABLE2_MIXES
    ]
    runner.run_many(requests)
    per_mix: Dict[str, Dict[str, float]] = {}
    for mix in TABLE2_MIXES:
        per_mix[mix.name] = {
            variant: _norm(runner, mix, "inclusive", variant)
            for variant in variants
        }
        per_mix[mix.name]["non_inclusive"] = _norm(runner, mix, "non_inclusive")
    aggregate = {
        variant: _geomean_over(runner, sample, "inclusive", variant)
        for variant in ("qbs-il1", "qbs-dl1", "qbs-l1", "qbs-l2", "qbs")
    }
    aggregate["non_inclusive"] = _geomean_over(runner, sample, "non_inclusive")
    scurve = sorted(_norm(runner, mix, "inclusive", "qbs") for mix in sample)
    query_limits: Dict[int, float] = {}
    for limit in limit_values:
        config = TLAConfig(
            policy="qbs",
            levels=("il1", "dl1", "l2"),
            max_queries=limit,
        )
        query_limits[limit] = _geomean_over(
            runner,
            list(TABLE2_MIXES),
            "inclusive",
            f"qbs-q{limit}",
            tla_config=config,
        )
    rows = [
        [name] + [values[v] for v in variants] + [values["non_inclusive"]]
        for name, values in per_mix.items()
    ]
    rows.append(
        ["All"] + [aggregate[v] for v in variants] + [aggregate["non_inclusive"]]
    )
    report = format_table(
        ["mix"] + variants + ["non-incl"],
        rows,
        title="Figure 7 (reproduced): QBS throughput vs inclusive baseline",
    )
    if query_limits:
        report += "\nQuery limits (showcase geomean): " + ", ".join(
            f"{k}->{v:.3f}" for k, v in query_limits.items()
        )
    report += "\n\n" + format_scurve(scurve, "QBS", width=40)
    return {
        "per_mix": per_mix,
        "aggregate": aggregate,
        "scurve": scurve,
        "query_limits": query_limits,
        "report": report,
    }


def figure8(runner: Optional[Runner] = None) -> Dict:
    """Figure 8 — reduction in LLC misses relative to inclusion.

    Shape targets: exclusive > QBS ~ non-inclusive > TLH-L1 > ECI >
    TLH-L2 on average; QBS reaches large reductions on its best mixes.
    """
    runner = runner or Runner()
    policies = {
        "tlh-l1": ("inclusive", "tlh-l1"),
        "tlh-l2": ("inclusive", "tlh-l2"),
        "eci": ("inclusive", "eci"),
        "qbs": ("inclusive", "qbs"),
        "non_inclusive": ("non_inclusive", "none"),
        "exclusive": ("exclusive", "none"),
    }
    sample = runner.sample_mixes()
    runner.run_many(
        [
            dict(mix=mix, mode=mode, tla=tla)
            for mix in list(TABLE2_MIXES) + sample
            for mode, tla in (
                list(policies.values()) + [("inclusive", "none")]
            )
        ]
    )
    per_mix: Dict[str, Dict[str, float]] = {}
    for mix in TABLE2_MIXES:
        per_mix[mix.name] = {
            label: runner.miss_reduction(mix, mode=mode, tla=tla)
            for label, (mode, tla) in policies.items()
        }
    aggregate = {
        label: sum(
            runner.miss_reduction(mix, mode=mode, tla=tla) for mix in sample
        ) / len(sample)
        for label, (mode, tla) in policies.items()
    }
    scurve = sorted(
        runner.miss_reduction(mix, mode="inclusive", tla="qbs") for mix in sample
    )
    labels = list(policies)
    rows = [[name] + [values[l] for l in labels] for name, values in per_mix.items()]
    rows.append(["All"] + [aggregate[l] for l in labels])
    report = format_table(
        ["mix"] + labels,
        rows,
        title="Figure 8 (reproduced): LLC miss reduction vs inclusive baseline",
    )
    report += "\n\n" + format_scurve(scurve, "QBS miss reduction", center=0.0, width=40)
    return {
        "per_mix": per_mix,
        "aggregate": aggregate,
        "scurve": scurve,
        "report": report,
    }


def figure9(runner: Optional[Runner] = None) -> Dict:
    """Figure 9 — TLA summary on inclusive and non-inclusive baselines.

    Shape targets: on the inclusive baseline QBS ~ non-inclusive and
    exclusive is slightly ahead (capacity); on the non-inclusive
    baseline every TLA policy is within noise of 1.0 — the proof that
    TLA gains come from eliminating inclusion victims.
    """
    runner = runner or Runner()
    sample = runner.sample_mixes()
    runner.run_many(
        [
            dict(mix=mix, mode=mode, tla=tla)
            for mix in sample
            for mode, tla in (
                ("inclusive", "none"),
                ("inclusive", "tlh-l1"),
                ("inclusive", "eci"),
                ("inclusive", "qbs"),
                ("non_inclusive", "none"),
                ("non_inclusive", "tlh-l1"),
                ("non_inclusive", "eci"),
                ("non_inclusive", "qbs"),
                ("exclusive", "none"),
            )
        ]
    )
    inclusive_base = {
        "tlh-l1": _geomean_over(runner, sample, "inclusive", "tlh-l1"),
        "eci": _geomean_over(runner, sample, "inclusive", "eci"),
        "qbs": _geomean_over(runner, sample, "inclusive", "qbs"),
        "non_inclusive": _geomean_over(runner, sample, "non_inclusive"),
        "exclusive": _geomean_over(runner, sample, "exclusive"),
    }
    non_inclusive_base = {
        label: geomean(
            [
                runner.normalized_throughput(
                    mix,
                    mode="non_inclusive",
                    tla=tla,
                    base_mode="non_inclusive",
                    base_tla="none",
                )
                for mix in sample
            ]
        )
        for label, tla in (
            ("tlh-l1", "tlh-l1"),
            ("eci", "eci"),
            ("qbs", "qbs"),
        )
    }
    non_inclusive_base["exclusive"] = geomean(
        [
            runner.normalized_throughput(
                mix, mode="exclusive", base_mode="non_inclusive"
            )
            for mix in sample
        ]
    )
    report = format_table(
        ["policy", "vs inclusive", "vs non-inclusive"],
        [
            [
                label,
                inclusive_base.get(label, float("nan")),
                non_inclusive_base.get(label, float("nan")),
            ]
            for label in ("tlh-l1", "eci", "qbs", "non_inclusive", "exclusive")
        ],
        title="Figure 9 (reproduced): TLA summary on both baselines (geomean)",
    )
    report += "\n\n" + format_barchart(
        inclusive_base, title="vs inclusive baseline (1.0 = baseline)"
    )
    return {
        "inclusive_base": inclusive_base,
        "non_inclusive_base": non_inclusive_base,
        "report": report,
    }


def figure10(
    runner: Optional[Runner] = None,
    mixes: Optional[Sequence[WorkloadMix]] = None,
) -> Dict:
    """Figure 10 — TLA scalability across core-cache:LLC ratios.

    Shape targets: every policy's gain grows as the LLC shrinks; QBS
    tracks non-inclusion at every ratio; TLH-L1 lags QBS at 1:2
    (where L2-resident locality matters; TLH-L1-L2 recovers it).
    """
    runner = runner or Runner()
    mixes = list(mixes) if mixes is not None else _ratio_sweep_mixes()
    policies = {
        "tlh-l1": ("inclusive", "tlh-l1"),
        "tlh-l1-l2": ("inclusive", "tlh-l1-l2"),
        "eci": ("inclusive", "eci"),
        "qbs": ("inclusive", "qbs"),
        "non_inclusive": ("non_inclusive", "none"),
        "exclusive": ("exclusive", "none"),
    }
    runner.run_many(
        [
            dict(mix=mix, mode=mode, tla=tla, llc_bytes=llc_bytes)
            for llc_bytes in RATIO_SWEEP.values()
            for mix in mixes
            for mode, tla in (
                list(policies.values()) + [("inclusive", "none")]
            )
        ]
    )
    series: Dict[str, Dict[str, float]] = {label: {} for label in policies}
    for ratio, llc_bytes in RATIO_SWEEP.items():
        for label, (mode, tla) in policies.items():
            series[label][ratio] = _geomean_over(
                runner, mixes, mode, tla, llc_bytes=llc_bytes
            )
    report = format_table(
        ["policy"] + list(RATIO_SWEEP),
        [
            [label] + [series[label][r] for r in RATIO_SWEEP]
            for label in policies
        ],
        title="Figure 10 (reproduced): geomean throughput vs inclusive, by ratio",
    )
    return {"series": series, "ratios": list(RATIO_SWEEP), "report": report}


def figure11(
    runner: Optional[Runner] = None,
    mixes_per_count: Optional[int] = None,
) -> Dict:
    """Figure 11 — QBS scalability with core count (2-, 4-, 8-core).

    Shape targets: QBS tracks non-inclusion at every core count, and
    the inclusive-vs-non-inclusive gap does not shrink with more cores
    (contention grows).  The paper uses 100 random mixes per core
    count; the default sample is smaller (override with REPRO_FULL).
    """
    runner = runner or Runner()
    count = mixes_per_count
    if count is None:
        count = 100 if runner.settings.full else 5
    series: Dict[int, Dict[str, float]] = {}
    for cores in (2, 4, 8):
        mixes = random_mixes(cores, count=count)
        # Big CMPs cost ~cores x the 2-core simulation time; halving
        # the 8-core window keeps the sweep tractable without touching
        # the within-core-count comparison the figure is about.
        quota = runner.settings.quota // 2 if cores == 8 else None
        warmup = runner.settings.warmup // 2 if cores == 8 else None
        runner.run_many(
            [
                dict(mix=mix, mode=mode, tla=tla, quota=quota, warmup=warmup)
                for mix in mixes
                for mode, tla in (
                    ("inclusive", "none"),
                    ("inclusive", "qbs"),
                    ("inclusive", "eci"),
                    ("non_inclusive", "none"),
                )
            ]
        )

        def norm(mode: str, tla: str) -> float:
            values = []
            for mix in mixes:
                variant = runner.run(
                    mix, mode=mode, tla=tla, quota=quota, warmup=warmup
                )
                base = runner.run(
                    mix, mode="inclusive", tla="none", quota=quota, warmup=warmup
                )
                values.append(variant.throughput / base.throughput)
            return geomean(values)

        series[cores] = {
            "qbs": norm("inclusive", "qbs"),
            "eci": norm("inclusive", "eci"),
            "non_inclusive": norm("non_inclusive", "none"),
        }
    report = format_table(
        ["cores", "ECI", "QBS", "non-incl"],
        [
            [cores, series[cores]["eci"], series[cores]["qbs"],
             series[cores]["non_inclusive"]]
            for cores in series
        ],
        title="Figure 11 (reproduced): scalability with core count (geomean)",
    )
    return {"series": series, "report": report}


def victim_cache_study(
    runner: Optional[Runner] = None,
    entries: Optional[int] = None,
) -> Dict:
    """Section VI — inclusive LLC + victim cache vs ECI and QBS.

    The paper's 32-entry victim cache is scaled with the machine
    (32 x scale, minimum 2) to keep its size *relative to the LLC*
    faithful.  Shape target: the victim cache recovers far less of the
    gap than ECI or QBS.
    """
    runner = runner or Runner()
    if entries is None:
        entries = max(2, int(round(32 * runner.settings.scale)))
    mixes = list(TABLE2_MIXES)
    runner.run_many(
        [
            dict(
                mix=mix,
                mode="inclusive",
                tla=f"vcache{entries}",
                tla_config=TLAConfig(),
                victim_cache_entries=entries,
            )
            for mix in mixes
        ]
        + [
            dict(mix=mix, mode=mode, tla=tla)
            for mix in mixes
            for mode, tla in (
                ("inclusive", "none"),
                ("inclusive", "eci"),
                ("inclusive", "qbs"),
                ("non_inclusive", "none"),
            )
        ]
    )

    def vc_norm(mix: WorkloadMix) -> float:
        variant = runner.run(
            mix, mode="inclusive", tla=f"vcache{entries}",
            tla_config=TLAConfig(), victim_cache_entries=entries,
        )
        baseline = runner.run(mix, "inclusive", "none")
        return variant.throughput / baseline.throughput

    aggregate = {
        "victim_cache": geomean([vc_norm(mix) for mix in mixes]),
        "eci": _geomean_over(runner, mixes, "inclusive", "eci"),
        "qbs": _geomean_over(runner, mixes, "inclusive", "qbs"),
        "non_inclusive": _geomean_over(runner, mixes, "non_inclusive"),
    }
    report = format_table(
        ["policy", "geomean vs inclusive"],
        [[k, v] for k, v in aggregate.items()],
        title=(
            f"Section VI (reproduced): {entries}-entry victim cache vs TLA"
        ),
    )
    return {"aggregate": aggregate, "entries": entries, "report": report}


def traffic_study(
    runner: Optional[Runner] = None,
    mixes: Optional[Sequence[WorkloadMix]] = None,
    interval: int = DEFAULT_INTERVAL,
) -> Dict:
    """Sections V.A-V.C — message-traffic accounting.

    Shape targets: TLH-L1 multiplies LLC request traffic by orders of
    magnitude and TLH-L2 by much less; ECI and QBS only add
    invalidate-class/query messages proportional to LLC misses (the
    paper measures <2 extra transactions per 1000 cycles).

    All rates come from the telemetry interval series — each run
    carries a fixed-``interval``-cycle-window time series whose window
    sums equal the aggregate message counters exactly, so the
    per-1000-cycle numbers below are the same as total-based ones
    while the per-window peaks expose *when* invalidate traffic
    clusters (the time-resolved view Section V.B argues from).
    """
    runner = runner or Runner()
    mixes = list(mixes) if mixes is not None else list(TABLE2_MIXES)
    totals = {
        label: {
            "llc_requests": 0,
            "tlh_hints": 0,
            "back_invalidates": 0,
            "eci_invalidates": 0,
            "qbs_queries": 0,
            "cycles": 0.0,
        }
        for label in ("base", "tlh-l1", "tlh-l2", "eci", "qbs")
    }
    #: per-variant peak single-window invalidate-class rate (per kcycle).
    peaks = {label: 0.0 for label in totals}
    variants = {
        "base": "none",
        "tlh-l1": "tlh-l1",
        "tlh-l2": "tlh-l2",
        "eci": "eci",
        "qbs": "qbs",
    }
    runner.run_many(
        [
            dict(mix=mix, mode="inclusive", tla=tla, intervals=interval)
            for mix in mixes
            for tla in variants.values()
        ]
    )
    for mix in mixes:
        for label, tla in variants.items():
            summary = runner.run(mix, "inclusive", tla, intervals=interval)
            series = summary.interval_series()
            bucket = totals[label]
            bucket["llc_requests"] += series.total("llc_request")
            bucket["tlh_hints"] += series.total("tlh_hint")
            bucket["back_invalidates"] += series.total("back_invalidate")
            bucket["eci_invalidates"] += series.total("eci_invalidate")
            bucket["qbs_queries"] += series.total("qbs_query")
            bucket["cycles"] += series.total_cycles
            window_rates = series.back_invalidate_class_per_kcycle()
            if window_rates:
                peaks[label] = max(peaks[label], max(window_rates))
    base = totals["base"]
    derived = {
        "tlh_l1_request_blowup": (
            (totals["tlh-l1"]["llc_requests"] + totals["tlh-l1"]["tlh_hints"])
            / max(1, base["llc_requests"])
        ),
        "tlh_l2_request_blowup": (
            (totals["tlh-l2"]["llc_requests"] + totals["tlh-l2"]["tlh_hints"])
            / max(1, base["llc_requests"])
        ),
        "eci_invalidate_increase": (
            (totals["eci"]["back_invalidates"] + totals["eci"]["eci_invalidates"])
            / max(1, base["back_invalidates"])
        ),
        "qbs_extra_messages_ratio": (
            (totals["qbs"]["back_invalidates"] + totals["qbs"]["qbs_queries"])
            / max(1, base["back_invalidates"])
        ),
        "base_invalidates_per_kcycle": (
            1000.0 * base["back_invalidates"] / max(1.0, base["cycles"])
        ),
        "eci_invalidates_per_kcycle": (
            1000.0
            * (totals["eci"]["back_invalidates"] + totals["eci"]["eci_invalidates"])
            / max(1.0, totals["eci"]["cycles"])
        ),
        # Time-resolved Section V.B: worst single window, not just the
        # run-wide mean — invalidate bursts hide inside means.
        "base_peak_invalidates_per_kcycle": peaks["base"],
        "eci_peak_invalidates_per_kcycle": peaks["eci"],
        "qbs_peak_invalidates_per_kcycle": peaks["qbs"],
    }
    report = format_table(
        ["metric", "value"],
        [[k, v] for k, v in derived.items()],
        title="Traffic study (Sections V.A-V.C, showcase mixes)",
    )
    return {
        "totals": totals,
        "derived": derived,
        "interval": interval,
        "report": report,
    }
