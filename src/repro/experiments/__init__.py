"""Experiment drivers reproducing every table and figure of the paper.

Each driver regenerates one artefact of the evaluation section and
returns structured results (plus a printable report):

======================  ====================================================
``table1``              Table I — per-app L1/L2/LLC MPKI in isolation
``figure2``             Fig 2 — hierarchy comparison across cache ratios
``figure5``             Fig 5 — TLH variants (+ hint-rate sensitivity)
``figure6``             Fig 6 — ECI
``figure7``             Fig 7 — QBS variants and query limits
``figure8``             Fig 8 — LLC miss reduction per policy
``figure9``             Fig 9 — summary on inclusive + non-inclusive bases
``figure10``            Fig 10 — scalability across core:LLC ratios
``figure11``            Fig 11 — scalability to 4- and 8-core CMPs
``victim_cache_study``  Section VI — 32-entry victim cache comparison
``traffic_study``       Sections V.A-V.C — message traffic accounting
======================  ====================================================

Runs are simulated on a *scaled* machine (every cache shrunk by
``ExperimentSettings.scale``, working sets shrunk to match) so the
whole suite completes in minutes; set ``REPRO_FULL=1`` for larger
windows, every one of the 105 two-core mixes, and the paper-sized
caches if you have the patience.
"""

from .runner import ExperimentSettings, Runner, RunSummary, cache_key
from .remote import RemoteRunner, ServiceClient
from .tables import table1, table2
from .figures import (
    figure2,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    traffic_study,
    victim_cache_study,
)
from .figure3 import figure3
from .studies import fairness_study, snoop_study
from .registry import EXPERIMENTS, run_experiment
from . import export

__all__ = [
    "ExperimentSettings",
    "RemoteRunner",
    "Runner",
    "RunSummary",
    "ServiceClient",
    "cache_key",
    "table1",
    "table2",
    "figure2",
    "figure3",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "traffic_study",
    "victim_cache_study",
    "fairness_study",
    "snoop_study",
    "EXPERIMENTS",
    "run_experiment",
    "export",
]
