"""CLI for the experiment drivers.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table1
    python -m repro.experiments -j 4 figure7
    python -m repro.experiments --submit http://127.0.0.1:8321 table1
    python -m repro.experiments all

Fidelity knobs come from the environment (see
:class:`repro.experiments.ExperimentSettings`): ``REPRO_SCALE``,
``REPRO_QUOTA``, ``REPRO_WARMUP``, ``REPRO_SAMPLE``, ``REPRO_FULL``,
``REPRO_JOBS``, ``REPRO_JOB_TIMEOUT``.  ``--jobs/-j`` overrides
``REPRO_JOBS`` and fans each driver's simulation grid out over that
many worker processes; ``--executor serial|pool|bus`` (with
``--bus-dir``/``--bus-spawn``) picks the execution backend, including
the distributed filesystem bus.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List, Optional

from ..metrics import ProgressReporter
from ..telemetry import RunTelemetry, TelemetryConfig, get_logger
from .registry import EXPERIMENTS, run_experiment
from .runner import ExperimentSettings, Runner

log = get_logger("repro.experiments")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the TLA paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names, 'list', or 'all'",
    )
    parser.add_argument(
        "--json-dir",
        help="also dump each experiment's result as <dir>/<name>.json",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the simulation grid "
        "(overrides REPRO_JOBS; 1 = serial)",
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "pool", "bus"],
        default=None,
        help="execution backend for the grid (overrides REPRO_EXECUTOR; "
        "default: serial when --jobs 1, the local pool otherwise)",
    )
    parser.add_argument(
        "--bus-dir",
        metavar="DIR",
        default=None,
        help="bus spool directory for --executor bus (overrides "
        "REPRO_BUS_DIR); share it with "
        "'python -m repro.orchestrate worker' processes",
    )
    parser.add_argument(
        "--bus-spawn",
        type=int,
        metavar="N",
        default=None,
        help="local bus workers to spawn (overrides REPRO_BUS_SPAWN; "
        "default: one per --jobs; 0 = externally managed workers)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="force the live progress line even on a non-TTY stderr",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record telemetry events and export JSONL + Chrome-trace "
        "artefacts (overrides REPRO_TRACE)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help="telemetry export directory (default: traces/, or "
        "REPRO_TRACE_OUT)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="N",
        help="record 1 in N eligible events (exact counts are kept "
        "regardless; overrides REPRO_TRACE_SAMPLE)",
    )
    parser.add_argument(
        "--host-phases",
        action="store_true",
        help="attribute the simulator's own wall time to host phases "
        "and print the per-phase report (overrides REPRO_HOST_PHASES)",
    )
    parser.add_argument(
        "--submit",
        metavar="URL",
        default=None,
        help="execute simulations on a repro.service instance at URL "
        "(e.g. http://127.0.0.1:8321) instead of locally",
    )
    parser.add_argument(
        "--tenant",
        default=None,
        help="tenant name sent with --submit requests "
        "(quota accounting; default: the shared 'public' tenant)",
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.experiments == ["all"]:
        names = sorted(EXPERIMENTS)
    else:
        names = args.experiments
    settings = ExperimentSettings.from_env()
    if args.jobs is not None:
        settings = replace(settings, jobs=args.jobs)
    if args.executor is not None:
        settings = replace(settings, executor=args.executor)
    if args.bus_dir is not None:
        settings = replace(settings, bus_dir=args.bus_dir)
    if args.bus_spawn is not None:
        settings = replace(settings, bus_spawn=args.bus_spawn)
    telemetry_config = settings.telemetry
    if args.trace or args.trace_out is not None or args.trace_sample is not None:
        telemetry_config = TelemetryConfig(
            enabled=args.trace or telemetry_config.enabled,
            out_dir=args.trace_out or telemetry_config.out_dir,
            sample=args.trace_sample or telemetry_config.sample,
            interval=telemetry_config.interval,
            categories=telemetry_config.categories,
        )
        settings = replace(settings, telemetry=telemetry_config)
    if args.host_phases:
        settings = replace(settings, host_phases=True)
    run_telemetry = (
        RunTelemetry(telemetry_config) if telemetry_config.active else None
    )
    reporter = ProgressReporter(enabled=True if args.progress else None)
    if args.submit:
        from .remote import RemoteRunner

        runner: Runner = RemoteRunner(
            args.submit,
            settings,
            reporter=reporter,
            telemetry=run_telemetry,
            tenant=args.tenant,
        )
    else:
        runner = Runner(settings, reporter=reporter, telemetry=run_telemetry)
    print(
        f"# settings: scale={settings.scale} quota={settings.quota} "
        f"warmup={settings.warmup} sample={settings.sample} "
        f"full={settings.full} jobs={settings.jobs}"
        + (f" executor={settings.executor}" if settings.executor else "")
        + (
            f" trace={telemetry_config.out_dir}"
            if telemetry_config.active
            else ""
        )
    )
    sweep_start = time.perf_counter()
    for name in names:
        start = time.perf_counter()
        result = run_experiment(name, runner=runner)
        elapsed = time.perf_counter() - start
        print()
        print(result["report"])
        print(f"# {name} finished in {elapsed:.1f}s")
        if args.json_dir:
            from pathlib import Path

            from . import export

            directory = Path(args.json_dir)
            directory.mkdir(parents=True, exist_ok=True)
            export.to_json(result, directory / f"{name}.json")
    if settings.host_phases:
        from ..metrics.throughput import aggregate_host
        from ..perf import (
            format_host_report,
            format_phase_report,
            merge_phase_reports,
        )

        aggregate = aggregate_host(
            runner.host_digests,
            workers=max(1, settings.jobs),
            wall_s=time.perf_counter() - sweep_start,
        )
        phases = merge_phase_reports(
            digest.get("phases") for digest in runner.host_digests
        )
        print()
        print(format_host_report(aggregate, phases))
        if runner.phase_timer is not None and runner.phase_timer.totals:
            print("  sweep phases (orchestrator wall time):")
            print(
                format_phase_report(runner.phase_timer.report(), indent="    ")
            )
    if run_telemetry is not None:
        paths = run_telemetry.write(
            settings={
                "scale": settings.scale,
                "quota": settings.quota,
                "warmup": settings.warmup,
                "jobs": settings.jobs,
                "experiments": names,
            }
        )
        log.info(
            "telemetry_written",
            trace=str(paths["trace"]),
            manifest=str(paths["manifest"]),
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
