"""CLI for the experiment drivers.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table1
    python -m repro.experiments figure7
    python -m repro.experiments all

Fidelity knobs come from the environment (see
:class:`repro.experiments.ExperimentSettings`): ``REPRO_SCALE``,
``REPRO_QUOTA``, ``REPRO_WARMUP``, ``REPRO_SAMPLE``, ``REPRO_FULL``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .registry import EXPERIMENTS, run_experiment
from .runner import ExperimentSettings, Runner


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the TLA paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names, 'list', or 'all'",
    )
    parser.add_argument(
        "--json-dir",
        help="also dump each experiment's result as <dir>/<name>.json",
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.experiments == ["all"]:
        names = sorted(EXPERIMENTS)
    else:
        names = args.experiments
    settings = ExperimentSettings.from_env()
    runner = Runner(settings)
    print(
        f"# settings: scale={settings.scale} quota={settings.quota} "
        f"warmup={settings.warmup} sample={settings.sample} full={settings.full}"
    )
    for name in names:
        start = time.perf_counter()
        result = run_experiment(name, runner=runner)
        elapsed = time.perf_counter() - start
        print()
        print(result["report"])
        print(f"# {name} finished in {elapsed:.1f}s")
        if args.json_dir:
            from pathlib import Path

            from . import export

            directory = Path(args.json_dir)
            directory.mkdir(parents=True, exist_ok=True)
            export.to_json(result, directory / f"{name}.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
