"""Figure 3 driver — the paper's worked inclusion-victim example.

Drives the real hierarchy controllers with the Section III reference
pattern (line ``a`` interleaved with a stream of fresh lines on a
2-entry L1 over a 4-entry LLC) under each policy and reports the
outcome the paper's figure narrates: the baseline victimises ``a``
repeatedly; TLH and QBS eliminate the victims outright; ECI converts
``a``'s memory misses into LLC hits.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..access import AccessType
from ..config import CacheConfig, HierarchyConfig, SimConfig, TLAConfig
from ..cpu import CMPSimulator
from ..metrics import format_table
from ..workloads import TraceRecord

_LINE = 64
_HOT_LINE = 0


def _pattern(length: int):
    """a, b, a, c, a, d, ... — the unfiltered pattern of Section III."""
    fresh = itertools.count(1)
    for _ in range(length):
        yield TraceRecord(0, AccessType.LOAD, _HOT_LINE * _LINE)
        yield TraceRecord(0, AccessType.LOAD, next(fresh) * _LINE)


def _machine(tla: TLAConfig) -> HierarchyConfig:
    """2-entry fully-associative L1s, 4-entry LLC, minimal L2 (the
    paper's example is two-level; the mandatory L2 is kept at one line
    so it cannot shelter anything)."""
    return HierarchyConfig(
        num_cores=1,
        mode="inclusive",
        l1i=CacheConfig(2 * _LINE, 2, replacement="lru", name="L1I"),
        l1d=CacheConfig(2 * _LINE, 2, replacement="lru", name="L1D"),
        l2=CacheConfig(1 * _LINE, 1, replacement="lru", name="L2"),
        llc=CacheConfig(4 * _LINE, 4, replacement="lru", name="LLC"),
        tla=tla,
    )


def figure3(runner: Optional[object] = None, length: int = 200) -> Dict:
    """Run the worked example under every policy (runner unused —
    this experiment is self-contained and takes milliseconds)."""
    policies = {
        "baseline": TLAConfig(policy="none"),
        "tlh": TLAConfig(policy="tlh", levels=("dl1",)),
        "eci": TLAConfig(policy="eci"),
        "qbs": TLAConfig(policy="qbs", levels=("il1", "dl1", "l2")),
    }
    rows = []
    results: Dict[str, Dict[str, int]] = {}
    for label, tla in policies.items():
        config = SimConfig(
            hierarchy=_machine(tla), instruction_quota=2 * length
        )
        sim = CMPSimulator(config, [_pattern(length)])
        result = sim.run()
        stats = result.cores[0].stats
        results[label] = {
            "l1d_misses": stats.l1d_misses,
            "llc_misses": stats.llc_misses,
            "inclusion_victims": result.total_inclusion_victims,
        }
        rows.append(
            [label, stats.l1d_misses, stats.llc_misses,
             result.total_inclusion_victims]
        )
    report = format_table(
        ["policy", "L1D misses", "LLC misses", "inclusion victims"],
        rows,
        title="Figure 3 (reproduced): the worked inclusion-victim example",
    )
    return {"results": results, "report": report}
