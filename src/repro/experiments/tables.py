"""Table I and Table II drivers."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import MB
from ..metrics import format_table
from ..workloads import TABLE2_MIXES, WorkloadMix, app_names, app_profile
from .runner import Runner


def table1(runner: Optional[Runner] = None) -> Dict:
    """Table I — L1/L2/LLC MPKI of the 15 apps in isolation.

    Each app runs alone on the baseline machine with the 2 MB
    (scaled) LLC, no prefetching — the paper's Table I methodology.
    Absolute values are synthetic; the category bands are what the
    calibration tests assert.
    """
    runner = runner or Runner()
    runner.run_many(
        [
            dict(mix=WorkloadMix(f"ISO_{name}", (name,)), llc_bytes=2 * MB)
            for name in app_names()
        ]
    )
    rows: List[Dict] = []
    for name in app_names():
        mix = WorkloadMix(f"ISO_{name}", (name,))
        summary = runner.run(mix, llc_bytes=2 * MB)
        mpki = summary.mpki[0]
        rows.append(
            {
                "app": name,
                "full_name": app_profile(name).full_name,
                "category": app_profile(name).category,
                "l1_mpki": mpki["l1"],
                "l2_mpki": mpki["l2"],
                "llc_mpki": mpki["llc"],
                "ipc": summary.ipcs[0],
            }
        )
    report = format_table(
        ["app", "category", "L1 MPKI", "L2 MPKI", "LLC MPKI", "IPC"],
        [
            [r["app"], r["category"], r["l1_mpki"], r["l2_mpki"],
             r["llc_mpki"], r["ipc"]]
            for r in rows
        ],
        title="Table I (reproduced): per-app MPKI in isolation, no prefetch",
        float_format="{:.2f}",
    )
    return {"rows": rows, "report": report}


def table2() -> Dict:
    """Table II — the 12 showcase workload mixes (definition data)."""
    rows = [
        {
            "name": mix.name,
            "apps": list(mix.apps),
            "categories": list(mix.categories),
        }
        for mix in TABLE2_MIXES
    ]
    report = format_table(
        ["Name", "Apps", "Category"],
        [[r["name"], "+".join(r["apps"]), ", ".join(r["categories"])] for r in rows],
        title="Table II (reproduced): workload mixes",
    )
    return {"rows": rows, "report": report}
