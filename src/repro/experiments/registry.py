"""Name-indexed registry of all experiment drivers."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import ExperimentError
from .runner import Runner
from .tables import table1, table2
from .figures import (
    figure2,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    traffic_study,
    victim_cache_study,
)
from .figure3 import figure3
from .studies import fairness_study, snoop_study

EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1,
    "table2": lambda runner=None: table2(),
    "figure2": figure2,
    "figure3": figure3,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "victim-cache": victim_cache_study,
    "traffic": traffic_study,
    "fairness": fairness_study,
    "snoop": snoop_study,
}


def run_experiment(name: str, runner: Optional[Runner] = None) -> Dict:
    """Run a named experiment; raises ``ExperimentError`` on unknown names.

    Every registered driver accepts the shared ``runner`` keyword, so
    a batch of experiments reuses one runner (and with it the result
    cache and the parallel orchestrator its ``run_many`` batches feed).
    """
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return driver(runner=runner)
